//! Checkpoint-backed model registry with atomic hot-swap.
//!
//! Serving must keep answering while a newer training snapshot loads:
//! the registry holds the active model behind `RwLock<Arc<..>>`. Readers
//! (`current`) clone the `Arc` under a read lock — a few nanoseconds —
//! and keep serving from their snapshot even while `swap` publishes a
//! replacement, so a batch never observes a half-loaded model.
//!
//! Loading goes through `scidl-core::checkpoint` (checksummed, crash-safe
//! files) and enforces the **round-trip guarantee**: a freshly restored
//! network must produce *bit-identical* logits to the network that wrote
//! the checkpoint. The format stores raw little-endian f32 bits and
//! [`scidl_nn::Network::infer`] is bit-deterministic, so any mismatch
//! means corruption or architecture drift — serving refuses the swap.
//!
//! ## Validate-before-publish and the swap circuit breaker
//!
//! [`ModelRegistry::load_and_swap_guarded`] never lets an unvalidated
//! model near traffic: the candidate must pass (1) the checkpoint
//! format's checksum at load, (2) the bit-identical round-trip check
//! against the training-side network when one is supplied, and (3) a
//! finite-output probe inference. Any failure leaves the previous model
//! serving — "rollback" is the absence of publication — and trips a
//! consecutive-failure counter. Once the counter reaches the breaker
//! threshold the breaker *opens* and further swap attempts are refused
//! outright ([`SwapError::BreakerOpen`]) until an operator calls
//! [`ModelRegistry::reset_breaker`]: a training run that has gone bad
//! (diverged weights, truncated checkpoints) cannot grind serving
//! through repeated load/verify cycles. Every rejection and breaker
//! transition is emitted as a `scidl-trace` event.

use scidl_cluster::faults::FaultPlan;
use scidl_core::checkpoint::Checkpoint;
use scidl_nn::network::Model;
use scidl_nn::Network;
use scidl_tensor::Tensor;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// An immutable, servable model snapshot: the network plus the training
/// cursor it was captured at.
pub struct ServingModel {
    /// The network (read-only at serving time; use [`Network::infer`]).
    pub network: Network,
    /// Training iteration the snapshot was taken at.
    pub iteration: u64,
    /// RNG seed of the training run that produced it.
    pub seed: u64,
}

impl std::fmt::Debug for ServingModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingModel")
            .field("network", &self.network.name())
            .field("iteration", &self.iteration)
            .field("seed", &self.seed)
            .finish()
    }
}

impl ServingModel {
    /// Wraps an in-memory network as a servable snapshot.
    pub fn new(network: Network, iteration: u64, seed: u64) -> Self {
        Self { network, iteration, seed }
    }

    /// Loads a checkpoint from `path` into `arch` (a freshly built
    /// network of the architecture that wrote it).
    pub fn load(path: &Path, mut arch: Network) -> io::Result<Self> {
        let ck = Checkpoint::load(path)?;
        if ck.params.len() != arch.num_params() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint has {} params but architecture {} expects {}",
                    ck.params.len(),
                    arch.name(),
                    arch.num_params()
                ),
            ));
        }
        ck.restore(&mut arch);
        Ok(Self::new(arch, ck.iteration, ck.seed))
    }
}

/// Checks the checkpoint round-trip guarantee: `loaded` must produce
/// bit-identical logits to `source` on `probe`. Comparison is on f32
/// *bits* so NaN payloads and signed zeros cannot hide drift.
pub fn check_roundtrip(source: &Network, loaded: &Network, probe: &Tensor) -> Result<(), String> {
    let want = source.infer(probe);
    let got = loaded.infer(probe);
    if want.shape() != got.shape() {
        return Err(format!(
            "round-trip shape mismatch: {:?} vs {:?}",
            want.shape(),
            got.shape()
        ));
    }
    for (i, (a, b)) in want.data().iter().zip(got.data()).enumerate() {
        if a.to_bits() != b.to_bits() {
            return Err(format!(
                "round-trip logit drift at flat index {i}: {a} ({:#010x}) vs {b} ({:#010x})",
                a.to_bits(),
                b.to_bits()
            ));
        }
    }
    Ok(())
}

/// Why a guarded hot-swap was refused. The previous model keeps serving
/// in every case.
#[derive(Debug)]
pub enum SwapError {
    /// The checkpoint failed to load: I/O error, bad magic/version, or a
    /// checksum mismatch (corruption on disk).
    Load(io::Error),
    /// The restored network's logits drifted from the training-side
    /// network's — the round-trip guarantee is violated.
    Roundtrip(String),
    /// The candidate produced a non-finite logit on the probe input: the
    /// checkpoint captured diverged weights.
    NonFinite(String),
    /// The breaker is open after `failures` consecutive bad checkpoints;
    /// the candidate was not even loaded. Call
    /// [`ModelRegistry::reset_breaker`] once the checkpoint source is
    /// healthy again.
    BreakerOpen {
        /// Consecutive failures that opened the breaker.
        failures: u32,
    },
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::Load(e) => write!(f, "swap refused: checkpoint load failed: {e}"),
            SwapError::Roundtrip(m) => write!(f, "swap refused: round-trip drift: {m}"),
            SwapError::NonFinite(m) => write!(f, "swap refused: non-finite probe output: {m}"),
            SwapError::BreakerOpen { failures } => write!(
                f,
                "swap refused: breaker open after {failures} consecutive bad checkpoints"
            ),
        }
    }
}

impl std::error::Error for SwapError {}

#[derive(Default)]
struct Breaker {
    consecutive_failures: u32,
    open: bool,
}

/// The registry serving workers read the active model from.
pub struct ModelRegistry {
    active: RwLock<Arc<ServingModel>>,
    breaker: Mutex<Breaker>,
    breaker_threshold: u32,
    faults: FaultPlan,
    swap_attempts: AtomicU64,
}

impl ModelRegistry {
    /// Creates a registry serving `model` with a breaker threshold of 3.
    pub fn new(model: ServingModel) -> Self {
        Self {
            active: RwLock::new(Arc::new(model)),
            breaker: Mutex::new(Breaker::default()),
            breaker_threshold: 3,
            faults: FaultPlan::none(),
            swap_attempts: AtomicU64::new(0),
        }
    }

    /// Sets how many *consecutive* guarded-swap failures open the
    /// breaker. Must be ≥ 1.
    pub fn with_breaker_threshold(mut self, threshold: u32) -> Self {
        assert!(threshold >= 1, "breaker threshold must be at least 1");
        self.breaker_threshold = threshold;
        self
    }

    /// Attaches a chaos plan: guarded swap attempt `k` fails as a
    /// checksum error when `plan.swap_is_corrupt(k)`, exercising the
    /// full reject/breaker path deterministically.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// The currently active model. Cheap (Arc clone under a read lock);
    /// the returned snapshot stays valid across concurrent swaps.
    pub fn current(&self) -> Arc<ServingModel> {
        Arc::clone(&self.active.read().unwrap())
    }

    /// Atomically publishes `model`, returning the previous snapshot.
    /// In-flight batches keep their old `Arc` and finish on it.
    pub fn swap(&self, model: ServingModel) -> Arc<ServingModel> {
        std::mem::replace(&mut *self.active.write().unwrap(), Arc::new(model))
    }

    /// Atomically publishes an already-shared snapshot, returning the
    /// previous one. This is the canary-promotion path: the candidate has
    /// been serving live traffic on a canary replica (so it is already
    /// behind an `Arc`), and promotion moves that exact snapshot to the
    /// whole fleet without reloading or copying the network.
    pub fn publish(&self, model: Arc<ServingModel>) -> Arc<ServingModel> {
        std::mem::replace(&mut *self.active.write().unwrap(), model)
    }

    /// Charges one rollout failure (e.g. a canary auto-rollback) against
    /// the swap circuit breaker: the counter advances and the breaker
    /// opens at the threshold, exactly as a rejected guarded swap would.
    /// Returns `true` when the breaker is open after the charge. A
    /// rollout failure consumes no swap-attempt ordinal — nothing was
    /// loaded.
    pub fn record_rollout_failure(&self, reason: &'static str) -> bool {
        let mut b = self.breaker.lock().unwrap();
        b.consecutive_failures += 1;
        let failures = b.consecutive_failures;
        let opened = !b.open && failures >= self.breaker_threshold;
        if opened {
            b.open = true;
        }
        let open = b.open;
        drop(b);
        let tr = scidl_trace::TraceHandle::current();
        if tr.enabled() {
            tr.instant(u64::MAX, scidl_trace::EventKind::SwapReject {
                reason,
                failures: failures as u64,
            });
            if opened {
                tr.instant(u64::MAX, scidl_trace::EventKind::Breaker {
                    open: true,
                    failures: failures as u64,
                });
            }
        }
        open
    }

    /// Records a healthy rollout (e.g. a promoted canary): fully clears
    /// the consecutive-failure count, mirroring a successful guarded
    /// swap.
    pub fn record_rollout_success(&self) {
        self.breaker.lock().unwrap().consecutive_failures = 0;
    }

    /// Loads a checkpoint and hot-swaps it in. When `verify` is given as
    /// `(source, probe)`, the round-trip guarantee is checked *before*
    /// publication and the swap refused on any drift.
    ///
    /// This is the *unguarded* path: it skips the finite-output probe
    /// and does not touch the circuit breaker. Production swaps should
    /// go through [`ModelRegistry::load_and_swap_guarded`].
    pub fn load_and_swap(
        &self,
        path: &Path,
        arch: Network,
        verify: Option<(&Network, &Tensor)>,
    ) -> io::Result<Arc<ServingModel>> {
        let model = ServingModel::load(path, arch)?;
        if let Some((source, probe)) = verify {
            check_roundtrip(source, &model.network, probe)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        }
        Ok(self.swap(model))
    }

    /// Validate-before-publish hot-swap under the circuit breaker.
    ///
    /// The candidate at `path` must pass, in order: the checkpoint
    /// checksum (at load), the bit-identical round-trip check against
    /// `source` when one is given, and a finite-output inference on
    /// `probe`. On any failure nothing is published — the previous model
    /// keeps serving — and the consecutive-failure counter advances;
    /// reaching the threshold opens the breaker, after which attempts
    /// fail fast with [`SwapError::BreakerOpen`]. A successful swap
    /// resets the counter and returns the *previous* snapshot.
    pub fn load_and_swap_guarded(
        &self,
        path: &Path,
        arch: Network,
        probe: &Tensor,
        source: Option<&Network>,
    ) -> Result<Arc<ServingModel>, SwapError> {
        let tr = scidl_trace::TraceHandle::current();
        {
            let b = self.breaker.lock().unwrap();
            if b.open {
                let failures = b.consecutive_failures;
                drop(b);
                if tr.enabled() {
                    tr.instant(u64::MAX, scidl_trace::EventKind::SwapReject {
                        reason: "breaker_open",
                        failures: failures as u64,
                    });
                }
                return Err(SwapError::BreakerOpen { failures });
            }
        }
        let attempt = self.swap_attempts.fetch_add(1, Ordering::SeqCst);
        let candidate = if self.faults.swap_is_corrupt(attempt) {
            Err(SwapError::Load(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("injected corrupt checkpoint at swap attempt {attempt}"),
            )))
        } else {
            ServingModel::load(path, arch).map_err(SwapError::Load)
        };
        let result = candidate.and_then(|model| {
            if let Some(src) = source {
                check_roundtrip(src, &model.network, probe).map_err(SwapError::Roundtrip)?;
            }
            let y = model.network.infer(probe);
            if !y.all_finite() {
                let bad = y
                    .data()
                    .iter()
                    .position(|v| !v.is_finite())
                    .map(|i| format!("logit at flat index {i} is {}", y.data()[i]))
                    .unwrap_or_else(|| "non-finite logit".into());
                return Err(SwapError::NonFinite(bad));
            }
            Ok(model)
        });
        match result {
            Ok(model) => {
                self.breaker.lock().unwrap().consecutive_failures = 0;
                Ok(self.swap(model))
            }
            Err(e) => {
                let reason = match &e {
                    SwapError::Load(_) => "checksum",
                    SwapError::Roundtrip(_) => "roundtrip",
                    SwapError::NonFinite(_) => "nonfinite",
                    SwapError::BreakerOpen { .. } => "breaker_open",
                };
                let mut b = self.breaker.lock().unwrap();
                b.consecutive_failures += 1;
                let failures = b.consecutive_failures;
                let opened = !b.open && failures >= self.breaker_threshold;
                if opened {
                    b.open = true;
                }
                drop(b);
                if tr.enabled() {
                    tr.instant(u64::MAX, scidl_trace::EventKind::SwapReject {
                        reason,
                        failures: failures as u64,
                    });
                    if opened {
                        tr.instant(u64::MAX, scidl_trace::EventKind::Breaker {
                            open: true,
                            failures: failures as u64,
                        });
                    }
                }
                Err(e)
            }
        }
    }

    /// Whether the breaker is currently refusing swaps.
    pub fn breaker_open(&self) -> bool {
        self.breaker.lock().unwrap().open
    }

    /// Consecutive guarded-swap failures since the last success/reset.
    pub fn consecutive_failures(&self) -> u32 {
        self.breaker.lock().unwrap().consecutive_failures
    }

    /// Guarded swap attempts made so far (the ordinal chaos plans index
    /// with `swap_is_corrupt`).
    pub fn swap_attempts(&self) -> u64 {
        self.swap_attempts.load(Ordering::SeqCst)
    }

    /// Closes the breaker and zeroes the failure counter: the operator
    /// asserts the checkpoint source is healthy again.
    pub fn reset_breaker(&self) {
        let mut b = self.breaker.lock().unwrap();
        b.open = false;
        b.consecutive_failures = 0;
        drop(b);
        let tr = scidl_trace::TraceHandle::current();
        if tr.enabled() {
            tr.instant(u64::MAX, scidl_trace::EventKind::Breaker { open: false, failures: 0 });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidl_nn::arch::hep_small;
    use scidl_tensor::{Shape4, TensorRng};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("scidl_serve_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn loaded_checkpoint_serves_bit_identical_logits() {
        let mut rng = TensorRng::new(11);
        let source = hep_small(&mut rng);
        let path = tmp("roundtrip");
        Checkpoint::capture(&source, 42, 7).save(&path).unwrap();

        let mut rng2 = TensorRng::new(999); // different init, fully overwritten
        let model = ServingModel::load(&path, hep_small(&mut rng2)).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(model.iteration, 42);
        assert_eq!(model.seed, 7);

        let mut xr = TensorRng::new(5);
        let probe = xr.uniform_tensor(Shape4::new(3, 3, 32, 32), -1.0, 1.0);
        check_roundtrip(&source, &model.network, &probe).unwrap();
    }

    #[test]
    fn roundtrip_check_catches_single_param_drift() {
        let mut rng = TensorRng::new(12);
        let source = hep_small(&mut rng);
        let mut rng2 = TensorRng::new(12);
        let mut drifted = hep_small(&mut rng2);
        let mut p = drifted.flat_params();
        p[100] += 1e-3;
        drifted.set_flat_params(&p);

        let mut xr = TensorRng::new(6);
        let probe = xr.uniform_tensor(Shape4::new(2, 3, 32, 32), -1.0, 1.0);
        let err = check_roundtrip(&source, &drifted, &probe).unwrap_err();
        assert!(err.contains("drift"), "{err}");
    }

    #[test]
    fn load_rejects_wrong_architecture() {
        let mut rng = TensorRng::new(13);
        let source = hep_small(&mut rng);
        let path = tmp("wrongarch");
        Checkpoint::capture(&source, 1, 1).save(&path).unwrap();
        let mut rng2 = TensorRng::new(14);
        // The full 224px HEP network has a different parameter count.
        let err = ServingModel::load(&path, scidl_nn::arch::hep_network(&mut rng2)).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("expects"), "{err}");
    }

    #[test]
    fn swap_is_atomic_and_preserves_in_flight_snapshots() {
        let mut rng = TensorRng::new(15);
        let reg = ModelRegistry::new(ServingModel::new(hep_small(&mut rng), 1, 0));
        let held = reg.current();
        assert_eq!(held.iteration, 1);

        let mut rng2 = TensorRng::new(16);
        let old = reg.swap(ServingModel::new(hep_small(&mut rng2), 2, 0));
        assert_eq!(old.iteration, 1);
        assert_eq!(reg.current().iteration, 2);
        // The snapshot taken before the swap is still fully usable.
        assert_eq!(held.iteration, 1);
        let mut xr = TensorRng::new(7);
        let probe = xr.uniform_tensor(Shape4::new(1, 3, 32, 32), -1.0, 1.0);
        assert!(held.network.infer(&probe).all_finite());
    }

    #[test]
    fn load_and_swap_refuses_corrupt_roundtrip() {
        let mut rng = TensorRng::new(17);
        let source = hep_small(&mut rng);
        let path = tmp("refuse");
        Checkpoint::capture(&source, 3, 0).save(&path).unwrap();

        let mut rngr = TensorRng::new(18);
        let reg = ModelRegistry::new(ServingModel::new(hep_small(&mut rngr), 0, 0));
        let mut xr = TensorRng::new(8);
        let probe = xr.uniform_tensor(Shape4::new(1, 3, 32, 32), -1.0, 1.0);

        // Against a *different* source network the round-trip must fail
        // and the active model must stay untouched.
        let mut rng3 = TensorRng::new(19);
        let other = hep_small(&mut rng3);
        let mut rng4 = TensorRng::new(20);
        let err = reg
            .load_and_swap(&path, hep_small(&mut rng4), Some((&other, &probe)))
            .unwrap_err();
        assert!(err.to_string().contains("drift"), "{err}");
        assert_eq!(reg.current().iteration, 0, "failed verify must not publish");

        // Against the true source it succeeds.
        let mut rng5 = TensorRng::new(21);
        reg.load_and_swap(&path, hep_small(&mut rng5), Some((&source, &probe))).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(reg.current().iteration, 3);
    }

    #[test]
    fn guarded_swap_publishes_only_validated_models() {
        let mut rng = TensorRng::new(50);
        let source = hep_small(&mut rng);
        let path = tmp("guarded_ok");
        Checkpoint::capture(&source, 9, 1).save(&path).unwrap();

        let mut rngr = TensorRng::new(51);
        let reg = ModelRegistry::new(ServingModel::new(hep_small(&mut rngr), 0, 0));
        let mut xr = TensorRng::new(52);
        let probe = xr.uniform_tensor(Shape4::new(1, 3, 32, 32), -1.0, 1.0);

        let mut rng2 = TensorRng::new(53);
        let old = reg
            .load_and_swap_guarded(&path, hep_small(&mut rng2), &probe, Some(&source))
            .unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(old.iteration, 0);
        assert_eq!(reg.current().iteration, 9);
        assert!(!reg.breaker_open());
        assert_eq!(reg.consecutive_failures(), 0);
    }

    #[test]
    fn corrupt_checkpoint_is_rejected_and_previous_model_keeps_serving() {
        let mut rng = TensorRng::new(54);
        let source = hep_small(&mut rng);
        let path = tmp("guarded_corrupt");
        Checkpoint::capture(&source, 9, 1).save(&path).unwrap();
        // Flip one byte of the payload: the file-format checksum must
        // catch it at load, before any publication.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let mut rngr = TensorRng::new(55);
        let reg = ModelRegistry::new(ServingModel::new(hep_small(&mut rngr), 7, 0));
        let mut xr = TensorRng::new(56);
        let probe = xr.uniform_tensor(Shape4::new(1, 3, 32, 32), -1.0, 1.0);

        let mut rng2 = TensorRng::new(57);
        let err = reg
            .load_and_swap_guarded(&path, hep_small(&mut rng2), &probe, Some(&source))
            .unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, SwapError::Load(_)), "{err}");
        assert_eq!(reg.current().iteration, 7, "previous model keeps serving");
        assert_eq!(reg.consecutive_failures(), 1);
        assert!(!reg.breaker_open(), "one failure is below the threshold");
    }

    #[test]
    fn guarded_swap_rejects_nonfinite_weights() {
        let mut rng = TensorRng::new(58);
        let mut diverged = hep_small(&mut rng);
        let mut p = diverged.flat_params();
        // Poison the tail (final-layer weights + biases): NaNs in early
        // layers can be absorbed by ReLU's max, but the output layer
        // feeds logits directly.
        let n = p.len();
        for v in p.iter_mut().skip(n - 64) {
            *v = f32::NAN;
        }
        diverged.set_flat_params(&p);
        let path = tmp("guarded_nan");
        Checkpoint::capture(&diverged, 9, 1).save(&path).unwrap();

        let mut rngr = TensorRng::new(59);
        let reg = ModelRegistry::new(ServingModel::new(hep_small(&mut rngr), 7, 0));
        let mut xr = TensorRng::new(60);
        let probe = xr.uniform_tensor(Shape4::new(1, 3, 32, 32), -1.0, 1.0);

        // No round-trip source: the checkpoint is internally consistent
        // (it really holds NaN weights), so only the probe catches it.
        let mut rng2 = TensorRng::new(61);
        let err =
            reg.load_and_swap_guarded(&path, hep_small(&mut rng2), &probe, None).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, SwapError::NonFinite(_)), "{err}");
        assert_eq!(reg.current().iteration, 7);
    }

    #[test]
    fn breaker_opens_after_threshold_and_reset_closes_it() {
        let mut rng = TensorRng::new(62);
        let source = hep_small(&mut rng);
        let path = tmp("guarded_breaker");
        Checkpoint::capture(&source, 9, 1).save(&path).unwrap();

        let mut rngr = TensorRng::new(63);
        // Chaos plan corrupts attempts 0 and 1; threshold 2 opens on the
        // second failure.
        let reg = ModelRegistry::new(ServingModel::new(hep_small(&mut rngr), 7, 0))
            .with_breaker_threshold(2)
            .with_faults(FaultPlan::none().with_corrupt_swap(0).with_corrupt_swap(1));
        let mut xr = TensorRng::new(64);
        let probe = xr.uniform_tensor(Shape4::new(1, 3, 32, 32), -1.0, 1.0);

        for want_open in [false, true] {
            let mut rng2 = TensorRng::new(65);
            let err = reg
                .load_and_swap_guarded(&path, hep_small(&mut rng2), &probe, Some(&source))
                .unwrap_err();
            assert!(matches!(err, SwapError::Load(_)), "{err}");
            assert_eq!(reg.breaker_open(), want_open);
        }
        // Open breaker fails fast without consuming a swap attempt.
        let attempts_before = reg.swap_attempts();
        let mut rng3 = TensorRng::new(66);
        let err = reg
            .load_and_swap_guarded(&path, hep_small(&mut rng3), &probe, Some(&source))
            .unwrap_err();
        assert!(matches!(err, SwapError::BreakerOpen { failures: 2 }), "{err}");
        assert_eq!(reg.swap_attempts(), attempts_before);
        assert_eq!(reg.current().iteration, 7, "nothing published while open");

        // Reset: the (healthy) checkpoint now goes through.
        reg.reset_breaker();
        let mut rng4 = TensorRng::new(67);
        reg.load_and_swap_guarded(&path, hep_small(&mut rng4), &probe, Some(&source)).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(reg.current().iteration, 9);
        assert!(!reg.breaker_open());
    }

    /// Satellite regression: `reset_breaker` is not an amnesty — it only
    /// zeroes the streak. A *fresh* failure streak after the reset must
    /// reopen the breaker at the same threshold.
    #[test]
    fn breaker_reopens_after_reset_and_another_failure_streak() {
        let mut rng = TensorRng::new(70);
        let source = hep_small(&mut rng);
        let path = tmp("breaker_reopen");
        Checkpoint::capture(&source, 9, 1).save(&path).unwrap();

        let mut rngr = TensorRng::new(71);
        // Attempts 0,1 corrupt (first streak) and 2,3 corrupt (second
        // streak after the reset).
        let reg = ModelRegistry::new(ServingModel::new(hep_small(&mut rngr), 7, 0))
            .with_breaker_threshold(2)
            .with_faults(
                FaultPlan::none()
                    .with_corrupt_swap(0)
                    .with_corrupt_swap(1)
                    .with_corrupt_swap(2)
                    .with_corrupt_swap(3),
            );
        let mut xr = TensorRng::new(72);
        let probe = xr.uniform_tensor(Shape4::new(1, 3, 32, 32), -1.0, 1.0);

        for _ in 0..2 {
            let mut rng2 = TensorRng::new(73);
            reg.load_and_swap_guarded(&path, hep_small(&mut rng2), &probe, Some(&source))
                .unwrap_err();
        }
        assert!(reg.breaker_open());
        reg.reset_breaker();
        assert!(!reg.breaker_open());
        assert_eq!(reg.consecutive_failures(), 0, "reset zeroes the streak");

        // One failure after reset: still closed (streak restarted at 0).
        let mut rng3 = TensorRng::new(74);
        reg.load_and_swap_guarded(&path, hep_small(&mut rng3), &probe, Some(&source))
            .unwrap_err();
        assert!(!reg.breaker_open(), "one post-reset failure is below threshold");
        assert_eq!(reg.consecutive_failures(), 1);

        // Second failure of the new streak: reopens.
        let mut rng4 = TensorRng::new(75);
        reg.load_and_swap_guarded(&path, hep_small(&mut rng4), &probe, Some(&source))
            .unwrap_err();
        assert!(reg.breaker_open(), "a fresh streak reopens the breaker");
        std::fs::remove_file(&path).ok();
        assert_eq!(reg.current().iteration, 7, "nothing was ever published");
    }

    /// Satellite regression: a successful guarded swap fully clears the
    /// consecutive-failure count — a later isolated failure starts a new
    /// streak from zero instead of inheriting pre-success failures.
    #[test]
    fn successful_guarded_swap_clears_failure_streak() {
        let mut rng = TensorRng::new(76);
        let source = hep_small(&mut rng);
        let path = tmp("success_clears");
        Checkpoint::capture(&source, 9, 1).save(&path).unwrap();

        let mut rngr = TensorRng::new(77);
        // Attempts 0,1 corrupt; attempt 2 healthy; attempt 3 corrupt.
        // Threshold 3: without the clear-on-success, attempt 3 would be
        // the third cumulative failure and would wrongly open the breaker.
        let reg = ModelRegistry::new(ServingModel::new(hep_small(&mut rngr), 7, 0))
            .with_breaker_threshold(3)
            .with_faults(
                FaultPlan::none().with_corrupt_swap(0).with_corrupt_swap(1).with_corrupt_swap(3),
            );
        let mut xr = TensorRng::new(78);
        let probe = xr.uniform_tensor(Shape4::new(1, 3, 32, 32), -1.0, 1.0);

        for _ in 0..2 {
            let mut rng2 = TensorRng::new(79);
            reg.load_and_swap_guarded(&path, hep_small(&mut rng2), &probe, Some(&source))
                .unwrap_err();
        }
        assert_eq!(reg.consecutive_failures(), 2);
        let mut rng3 = TensorRng::new(80);
        reg.load_and_swap_guarded(&path, hep_small(&mut rng3), &probe, Some(&source)).unwrap();
        assert_eq!(reg.consecutive_failures(), 0, "success fully clears the streak");
        assert_eq!(reg.current().iteration, 9);

        let mut rng4 = TensorRng::new(81);
        reg.load_and_swap_guarded(&path, hep_small(&mut rng4), &probe, Some(&source))
            .unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(reg.consecutive_failures(), 1, "new streak starts from zero");
        assert!(!reg.breaker_open(), "isolated post-success failure must not open");
        assert_eq!(reg.current().iteration, 9, "the promoted model keeps serving");
    }

    /// Fleet hooks: `publish` moves a shared snapshot in atomically, and
    /// rollout failures charge the same breaker as rejected swaps.
    #[test]
    fn publish_and_rollout_hooks_drive_the_breaker() {
        let mut rng = TensorRng::new(82);
        let reg = ModelRegistry::new(ServingModel::new(hep_small(&mut rng), 1, 0))
            .with_breaker_threshold(2);
        let mut rng2 = TensorRng::new(83);
        let candidate = Arc::new(ServingModel::new(hep_small(&mut rng2), 5, 0));

        let old = reg.publish(Arc::clone(&candidate));
        assert_eq!(old.iteration, 1);
        assert!(Arc::ptr_eq(&reg.current(), &candidate), "the exact snapshot is published");

        assert!(!reg.record_rollout_failure("canary_slo"), "first failure stays closed");
        assert_eq!(reg.consecutive_failures(), 1);
        reg.record_rollout_success();
        assert_eq!(reg.consecutive_failures(), 0, "rollout success clears the streak");
        assert!(!reg.record_rollout_failure("canary_slo"));
        assert!(reg.record_rollout_failure("canary_slo"), "threshold reached: opens");
        assert!(reg.breaker_open());
        reg.reset_breaker();
        assert!(!reg.breaker_open());
    }
}
