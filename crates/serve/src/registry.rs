//! Checkpoint-backed model registry with atomic hot-swap.
//!
//! Serving must keep answering while a newer training snapshot loads:
//! the registry holds the active model behind `RwLock<Arc<..>>`. Readers
//! (`current`) clone the `Arc` under a read lock — a few nanoseconds —
//! and keep serving from their snapshot even while `swap` publishes a
//! replacement, so a batch never observes a half-loaded model.
//!
//! Loading goes through `scidl-core::checkpoint` (checksummed, crash-safe
//! files) and enforces the **round-trip guarantee**: a freshly restored
//! network must produce *bit-identical* logits to the network that wrote
//! the checkpoint. The format stores raw little-endian f32 bits and
//! [`scidl_nn::Network::infer`] is bit-deterministic, so any mismatch
//! means corruption or architecture drift — serving refuses the swap.

use scidl_core::checkpoint::Checkpoint;
use scidl_nn::network::Model;
use scidl_nn::Network;
use scidl_tensor::Tensor;
use std::io;
use std::path::Path;
use std::sync::{Arc, RwLock};

/// An immutable, servable model snapshot: the network plus the training
/// cursor it was captured at.
pub struct ServingModel {
    /// The network (read-only at serving time; use [`Network::infer`]).
    pub network: Network,
    /// Training iteration the snapshot was taken at.
    pub iteration: u64,
    /// RNG seed of the training run that produced it.
    pub seed: u64,
}

impl std::fmt::Debug for ServingModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingModel")
            .field("network", &self.network.name())
            .field("iteration", &self.iteration)
            .field("seed", &self.seed)
            .finish()
    }
}

impl ServingModel {
    /// Wraps an in-memory network as a servable snapshot.
    pub fn new(network: Network, iteration: u64, seed: u64) -> Self {
        Self { network, iteration, seed }
    }

    /// Loads a checkpoint from `path` into `arch` (a freshly built
    /// network of the architecture that wrote it).
    pub fn load(path: &Path, mut arch: Network) -> io::Result<Self> {
        let ck = Checkpoint::load(path)?;
        if ck.params.len() != arch.num_params() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint has {} params but architecture {} expects {}",
                    ck.params.len(),
                    arch.name(),
                    arch.num_params()
                ),
            ));
        }
        ck.restore(&mut arch);
        Ok(Self::new(arch, ck.iteration, ck.seed))
    }
}

/// Checks the checkpoint round-trip guarantee: `loaded` must produce
/// bit-identical logits to `source` on `probe`. Comparison is on f32
/// *bits* so NaN payloads and signed zeros cannot hide drift.
pub fn check_roundtrip(source: &Network, loaded: &Network, probe: &Tensor) -> Result<(), String> {
    let want = source.infer(probe);
    let got = loaded.infer(probe);
    if want.shape() != got.shape() {
        return Err(format!(
            "round-trip shape mismatch: {:?} vs {:?}",
            want.shape(),
            got.shape()
        ));
    }
    for (i, (a, b)) in want.data().iter().zip(got.data()).enumerate() {
        if a.to_bits() != b.to_bits() {
            return Err(format!(
                "round-trip logit drift at flat index {i}: {a} ({:#010x}) vs {b} ({:#010x})",
                a.to_bits(),
                b.to_bits()
            ));
        }
    }
    Ok(())
}

/// The registry serving workers read the active model from.
pub struct ModelRegistry {
    active: RwLock<Arc<ServingModel>>,
}

impl ModelRegistry {
    /// Creates a registry serving `model`.
    pub fn new(model: ServingModel) -> Self {
        Self { active: RwLock::new(Arc::new(model)) }
    }

    /// The currently active model. Cheap (Arc clone under a read lock);
    /// the returned snapshot stays valid across concurrent swaps.
    pub fn current(&self) -> Arc<ServingModel> {
        Arc::clone(&self.active.read().unwrap())
    }

    /// Atomically publishes `model`, returning the previous snapshot.
    /// In-flight batches keep their old `Arc` and finish on it.
    pub fn swap(&self, model: ServingModel) -> Arc<ServingModel> {
        std::mem::replace(&mut *self.active.write().unwrap(), Arc::new(model))
    }

    /// Loads a checkpoint and hot-swaps it in. When `verify` is given as
    /// `(source, probe)`, the round-trip guarantee is checked *before*
    /// publication and the swap refused on any drift.
    pub fn load_and_swap(
        &self,
        path: &Path,
        arch: Network,
        verify: Option<(&Network, &Tensor)>,
    ) -> io::Result<Arc<ServingModel>> {
        let model = ServingModel::load(path, arch)?;
        if let Some((source, probe)) = verify {
            check_roundtrip(source, &model.network, probe)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        }
        Ok(self.swap(model))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidl_nn::arch::hep_small;
    use scidl_tensor::{Shape4, TensorRng};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("scidl_serve_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn loaded_checkpoint_serves_bit_identical_logits() {
        let mut rng = TensorRng::new(11);
        let source = hep_small(&mut rng);
        let path = tmp("roundtrip");
        Checkpoint::capture(&source, 42, 7).save(&path).unwrap();

        let mut rng2 = TensorRng::new(999); // different init, fully overwritten
        let model = ServingModel::load(&path, hep_small(&mut rng2)).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(model.iteration, 42);
        assert_eq!(model.seed, 7);

        let mut xr = TensorRng::new(5);
        let probe = xr.uniform_tensor(Shape4::new(3, 3, 32, 32), -1.0, 1.0);
        check_roundtrip(&source, &model.network, &probe).unwrap();
    }

    #[test]
    fn roundtrip_check_catches_single_param_drift() {
        let mut rng = TensorRng::new(12);
        let source = hep_small(&mut rng);
        let mut rng2 = TensorRng::new(12);
        let mut drifted = hep_small(&mut rng2);
        let mut p = drifted.flat_params();
        p[100] += 1e-3;
        drifted.set_flat_params(&p);

        let mut xr = TensorRng::new(6);
        let probe = xr.uniform_tensor(Shape4::new(2, 3, 32, 32), -1.0, 1.0);
        let err = check_roundtrip(&source, &drifted, &probe).unwrap_err();
        assert!(err.contains("drift"), "{err}");
    }

    #[test]
    fn load_rejects_wrong_architecture() {
        let mut rng = TensorRng::new(13);
        let source = hep_small(&mut rng);
        let path = tmp("wrongarch");
        Checkpoint::capture(&source, 1, 1).save(&path).unwrap();
        let mut rng2 = TensorRng::new(14);
        // The full 224px HEP network has a different parameter count.
        let err = ServingModel::load(&path, scidl_nn::arch::hep_network(&mut rng2)).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("expects"), "{err}");
    }

    #[test]
    fn swap_is_atomic_and_preserves_in_flight_snapshots() {
        let mut rng = TensorRng::new(15);
        let reg = ModelRegistry::new(ServingModel::new(hep_small(&mut rng), 1, 0));
        let held = reg.current();
        assert_eq!(held.iteration, 1);

        let mut rng2 = TensorRng::new(16);
        let old = reg.swap(ServingModel::new(hep_small(&mut rng2), 2, 0));
        assert_eq!(old.iteration, 1);
        assert_eq!(reg.current().iteration, 2);
        // The snapshot taken before the swap is still fully usable.
        assert_eq!(held.iteration, 1);
        let mut xr = TensorRng::new(7);
        let probe = xr.uniform_tensor(Shape4::new(1, 3, 32, 32), -1.0, 1.0);
        assert!(held.network.infer(&probe).all_finite());
    }

    #[test]
    fn load_and_swap_refuses_corrupt_roundtrip() {
        let mut rng = TensorRng::new(17);
        let source = hep_small(&mut rng);
        let path = tmp("refuse");
        Checkpoint::capture(&source, 3, 0).save(&path).unwrap();

        let mut rngr = TensorRng::new(18);
        let reg = ModelRegistry::new(ServingModel::new(hep_small(&mut rngr), 0, 0));
        let mut xr = TensorRng::new(8);
        let probe = xr.uniform_tensor(Shape4::new(1, 3, 32, 32), -1.0, 1.0);

        // Against a *different* source network the round-trip must fail
        // and the active model must stay untouched.
        let mut rng3 = TensorRng::new(19);
        let other = hep_small(&mut rng3);
        let mut rng4 = TensorRng::new(20);
        let err = reg
            .load_and_swap(&path, hep_small(&mut rng4), Some((&other, &probe)))
            .unwrap_err();
        assert!(err.to_string().contains("drift"), "{err}");
        assert_eq!(reg.current().iteration, 0, "failed verify must not publish");

        // Against the true source it succeeds.
        let mut rng5 = TensorRng::new(21);
        reg.load_and_swap(&path, hep_small(&mut rng5), Some((&source, &probe))).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(reg.current().iteration, 3);
    }
}
