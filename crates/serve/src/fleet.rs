//! Fleet-scale serving: a replicated router in front of N per-replica
//! [`Server`]s, with pluggable dispatch, fleet-level priority admission,
//! an SLO-driven autoscaler and zero-downtime canary rollouts.
//!
//! PR 6 built the single-replica resilience primitives (supervised
//! worker pool, deadline admission, guarded hot-swap, chaos injection).
//! This module composes N of those replicas behind a [`Router`]:
//!
//! * **Dispatch** — [`DispatchPolicy`]: round-robin, least-loaded, or
//!   power-of-two-choices over queue depth. Under skewed load (one slow
//!   replica) p2c avoids the hot replica with two cheap depth probes,
//!   beating round-robin's p99 — the property the `scidl-bench serving
//!   --fleet` acceptance check pins.
//! * **Admission** — [`PriorityAdmission`] layers fleet-wide priority
//!   classes on top of each replica's shed watermark: lower-priority
//!   classes shed at a smaller fraction of aggregate fleet headroom, so
//!   interactive traffic survives overload that drops batch traffic.
//! * **Autoscaling** — [`AutoscalerConfig`] sizes the fleet from the
//!   observed arrival rate and windowed p99 against the calibrated KNL
//!   cost model's per-replica sustainable rate, stepping ±1 replica per
//!   [`Router::autoscale_tick`]. Scale-down drains the victim replica
//!   (its in-flight work completes) — zero downtime.
//! * **Canary** — [`Router::begin_canary`] routes a seeded fraction of
//!   traffic to a candidate model on a dedicated replica, then
//!   [`Router::resolve_canary`] auto-promotes (p99 within tolerance of
//!   the live model) or auto-rolls-back. Rollbacks charge the model
//!   registry's circuit breaker; an open breaker refuses new canaries.
//! * **Fault routing** — a [`FaultPlan`] with *global* worker indices is
//!   sliced per replica ([`FaultPlan::for_replica`]); when a replica
//!   loses its whole pool the router reroutes in-flight work to a
//!   sibling instead of losing it (budgeted by
//!   [`FleetConfig::reroute_budget`]).
//!
//! Every semantic is mirrored bit-deterministically in the virtual-time
//! simulator ([`simulate_fleet`] / [`FleetSimConfig`]), which the fleet
//! frontier benchmark and the differential integration tests drive from
//! the same seed and fault plan as the threaded router.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use crate::registry::{ModelRegistry, ServingModel, SwapError};
use crate::server::{Client, InferResult, ServeError, Server, ServerConfig, ServerReport};
use crate::sim::{ServiceModel, SimConfig};
use scidl_cluster::faults::FaultPlan;
use scidl_core::metrics::LatencyRecorder;
use scidl_tensor::stats::percentile;
use scidl_tensor::Tensor;
use scidl_trace::{EventKind, TraceHandle};

// ---------------------------------------------------------------------------
// Seeded routing randomness (shared by the threaded router and the sim).
// ---------------------------------------------------------------------------

const SALT_PRIORITY: u64 = 0x9E37_79B9_7F4A_7C15;
const SALT_CANARY: u64 = 0xD1B5_4A32_D192_ED03;
const SALT_P2C_A: u64 = 0xA076_1D64_78BD_642F;
const SALT_P2C_B: u64 = 0xE703_7ED1_A0B4_28DB;

fn xorshift64(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// Deterministic uniform draw in `[0, 1)` from `(seed, salt, ordinal)`.
/// Both the threaded router and the simulator route request `ordinal`
/// through this, so a shared seed yields identical routing decisions.
fn rand01(seed: u64, salt: u64, ordinal: u64) -> f64 {
    let mut x = seed
        .wrapping_mul(0x2545_F491_4F6C_DD1D)
        ^ salt
        ^ ordinal.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    if x == 0 {
        x = salt | 1;
    }
    x = xorshift64(xorshift64(xorshift64(x)));
    (x >> 11) as f64 / (1u64 << 53) as f64
}

// ---------------------------------------------------------------------------
// Policy / configuration types.
// ---------------------------------------------------------------------------

/// How the router picks a replica for an admitted request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Cycle through live replicas in order, ignoring load.
    RoundRobin,
    /// Scan every live replica and pick the shallowest queue
    /// (ties break toward the lowest replica id).
    LeastLoaded,
    /// Sample two replicas with the seeded RNG and pick the shallower —
    /// near-least-loaded balance at O(1) probe cost.
    PowerOfTwoChoices,
}

impl DispatchPolicy {
    /// Stable name used in traces and benchmark CSV rows.
    pub fn name(&self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::LeastLoaded => "least-loaded",
            DispatchPolicy::PowerOfTwoChoices => "p2c",
        }
    }
}

/// Fleet-level request priority class. Lower classes shed earlier under
/// overload (see [`PriorityAdmission`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Priority {
    /// User-facing traffic: sheds only when the whole fleet is full.
    Interactive,
    /// Default class.
    Standard,
    /// Offline / bulk traffic: first to shed.
    Batch,
}

impl Priority {
    /// Index into per-class arrays (`Interactive = 0 … Batch = 2`).
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Standard => 1,
            Priority::Batch => 2,
        }
    }
}

/// Fleet-wide admission thresholds by priority class.
///
/// A class-`p` request is shed when the aggregate fleet backlog has
/// reached `shed_frac[p]` of the fleet's total shed headroom
/// (`live_replicas × per-replica watermark`). `shed_frac[0] = 1.0`
/// means interactive traffic only sheds when every replica is at its
/// own watermark.
#[derive(Clone, Copy, Debug)]
pub struct PriorityAdmission {
    /// Backlog fraction, per [`Priority::index`], at which the class
    /// sheds. Each entry must be in `(0, 1]`.
    pub shed_frac: [f64; 3],
}

impl Default for PriorityAdmission {
    fn default() -> Self {
        Self { shed_frac: [1.0, 0.7, 0.45] }
    }
}

/// SLO-driven fleet sizing for the threaded [`Router`].
///
/// The router cannot see virtual time, so the calibrated per-replica
/// sustainable rate is supplied explicitly (from
/// [`ServiceModel::saturated_rate`] × workers per replica).
#[derive(Clone, Copy, Debug)]
pub struct AutoscalerConfig {
    /// Lower bound on live replicas.
    pub min_replicas: usize,
    /// Upper bound on live replicas.
    pub max_replicas: usize,
    /// Target utilisation of the per-replica sustainable rate; desired
    /// size is `ceil(rate / (replica_rate × target_util))`.
    pub target_util: f64,
    /// Windowed p99 above this forces at least one scale-up step.
    pub slo_p99_secs: f64,
    /// Scale-down only when the fleet backlog is at most this many
    /// requests per live replica (don't shrink into a backlog).
    pub scale_down_backlog: usize,
    /// Requests/s one replica sustains, from the calibrated cost model.
    pub replica_rate: f64,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        Self {
            min_replicas: 1,
            max_replicas: 8,
            target_util: 0.7,
            slo_p99_secs: 0.2,
            scale_down_backlog: 2,
            replica_rate: 100.0,
        }
    }
}

/// Canary rollout tuning.
#[derive(Clone, Copy, Debug)]
pub struct CanaryConfig {
    /// Fraction of admitted traffic routed to the canary replica.
    pub fraction: f64,
    /// Promote iff `canary_p99 ≤ base_p99 × (1 + regression_tol)`.
    pub regression_tol: f64,
    /// Minimum completed samples on *both* arms before a decision.
    pub min_samples: usize,
}

impl Default for CanaryConfig {
    fn default() -> Self {
        Self { fraction: 0.2, regression_tol: 0.25, min_samples: 20 }
    }
}

/// Outcome of [`Router::resolve_canary`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CanaryDecision {
    /// The candidate met the SLO bar and was published fleet-wide.
    Promoted,
    /// The candidate regressed p99; it was retired and the failure was
    /// charged to the registry's circuit breaker.
    RolledBack,
    /// Not enough samples yet (or no canary in flight); keep serving.
    Pending,
    /// The candidate passed, but the breaker opened during the rollout;
    /// the canary was retired without publishing.
    BreakerOpen,
}

/// Fleet configuration: a per-replica [`ServerConfig`] template plus
/// fleet-level routing, admission, scaling and chaos knobs.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Initial replica count.
    pub replicas: usize,
    /// Template for every replica. Its `faults` field is ignored: the
    /// fleet-level [`FleetConfig::faults`] plan (global worker indices)
    /// is sliced per replica instead.
    pub replica: ServerConfig,
    /// Dispatch policy.
    pub dispatch: DispatchPolicy,
    /// Seed for the routing RNG (p2c probes, canary traffic split).
    pub seed: u64,
    /// Fleet-level priority admission thresholds.
    pub admission: PriorityAdmission,
    /// How many times a request that lost its replica (pool death) is
    /// rerouted to a sibling before the error surfaces to the caller.
    pub reroute_budget: u32,
    /// Autoscaler tuning, applied on explicit [`Router::autoscale_tick`]
    /// calls.
    pub autoscaler: AutoscalerConfig,
    /// Chaos plan with *global* worker indices: replica `r` owns workers
    /// `[r·w, (r+1)·w)` where `w` is the template worker count.
    pub faults: FaultPlan,
}

impl FleetConfig {
    /// A fleet of `replicas` copies of `replica` with default admission,
    /// autoscaling and no chaos.
    pub fn new(replicas: usize, replica: ServerConfig, dispatch: DispatchPolicy) -> Self {
        Self {
            replicas,
            replica,
            dispatch,
            seed: 0,
            admission: PriorityAdmission::default(),
            reroute_budget: 1,
            autoscaler: AutoscalerConfig::default(),
            faults: FaultPlan::none(),
        }
    }
}

/// What the fleet machinery did over the router's lifetime.
#[derive(Clone, Debug, Default)]
pub struct FleetReport {
    /// Requests the router dispatched to a replica.
    pub routed: u64,
    /// Requests shed by fleet-level priority admission, per class.
    pub fleet_shed: [u64; 3],
    /// Reroutes after a replica lost the request (pool death).
    pub rerouted: u64,
    /// Replicas retired after losing their pool.
    pub replicas_lost: u64,
    /// Autoscaler scale-up steps.
    pub scale_ups: u64,
    /// Autoscaler scale-down steps.
    pub scale_downs: u64,
    /// Whether a canary was promoted.
    pub canary_promoted: bool,
    /// Whether a canary was rolled back.
    pub canary_rolled_back: bool,
    /// Live (non-canary) replicas at shutdown.
    pub final_replicas: usize,
    /// Aggregated per-replica resilience counters (live + retired).
    pub servers: ServerReport,
}

fn merge_reports(into: &mut ServerReport, r: &ServerReport) {
    into.served += r.served;
    into.shed += r.shed;
    into.expired += r.expired;
    into.panics += r.panics;
    into.respawns += r.respawns;
    into.replacements += r.replacements;
    into.requeued += r.requeued;
    into.worker_lost += r.worker_lost;
}

// ---------------------------------------------------------------------------
// The threaded router.
// ---------------------------------------------------------------------------

struct Slot {
    id: usize,
    server: Server,
    client: Client,
    canary: bool,
}

struct CanaryState {
    registry: Arc<ModelRegistry>,
    cfg: CanaryConfig,
    slot_id: usize,
    base_lat: Vec<f64>,
    canary_lat: Vec<f64>,
}

struct Window {
    arrivals: u64,
    since: Instant,
    samples: Vec<f64>,
}

#[derive(Default)]
struct Retired {
    recorder: LatencyRecorder,
    reports: Vec<ServerReport>,
}

#[derive(Default)]
struct Flags {
    canary_promoted: bool,
    canary_rolled_back: bool,
}

/// Replicated serving front end: owns N replica [`Server`]s and routes
/// every request through fleet admission, the canary split and the
/// configured dispatch policy. All methods take `&self`; the router is
/// shared across client threads behind an `Arc`.
pub struct Router {
    registry: Arc<ModelRegistry>,
    cfg: FleetConfig,
    slots: RwLock<Vec<Slot>>,
    next_id: AtomicUsize,
    rr: AtomicUsize,
    ordinal: AtomicU64,
    routed: AtomicU64,
    fleet_shed: [AtomicU64; 3],
    rerouted: AtomicU64,
    replicas_lost: AtomicU64,
    scale_ups: AtomicU64,
    scale_downs: AtomicU64,
    flags: Mutex<Flags>,
    window: Mutex<Window>,
    canary: Mutex<Option<CanaryState>>,
    retired: Mutex<Retired>,
    tr: TraceHandle,
}

fn spawn_slot(
    registry: &Arc<ModelRegistry>,
    template: &ServerConfig,
    id: usize,
    faults: FaultPlan,
    canary: bool,
) -> Slot {
    let mut cfg = template.clone();
    cfg.faults = faults;
    let server = Server::start(Arc::clone(registry), cfg);
    let client = server.client();
    Slot { id, server, client, canary }
}

impl Router {
    /// Starts `cfg.replicas` replica servers against `registry` and
    /// returns the router.
    pub fn start(registry: Arc<ModelRegistry>, cfg: FleetConfig) -> Self {
        assert!(cfg.replicas >= 1, "fleet needs at least one replica");
        assert!(
            cfg.admission.shed_frac.iter().all(|&f| f > 0.0 && f <= 1.0),
            "admission shed fractions must be in (0, 1]"
        );
        let wpr = cfg.replica.workers;
        let slots: Vec<Slot> = (0..cfg.replicas)
            .map(|id| {
                spawn_slot(&registry, &cfg.replica, id, cfg.faults.for_replica(id, wpr), false)
            })
            .collect();
        Self {
            registry,
            next_id: AtomicUsize::new(cfg.replicas),
            cfg,
            slots: RwLock::new(slots),
            rr: AtomicUsize::new(0),
            ordinal: AtomicU64::new(0),
            routed: AtomicU64::new(0),
            fleet_shed: Default::default(),
            rerouted: AtomicU64::new(0),
            replicas_lost: AtomicU64::new(0),
            scale_ups: AtomicU64::new(0),
            scale_downs: AtomicU64::new(0),
            flags: Mutex::new(Flags::default()),
            window: Mutex::new(Window {
                arrivals: 0,
                since: Instant::now(),
                samples: Vec::new(),
            }),
            canary: Mutex::new(None),
            retired: Mutex::new(Retired::default()),
            tr: TraceHandle::begin("fleet"),
        }
    }

    /// Live non-canary replicas.
    pub fn live_replicas(&self) -> usize {
        self.slots.read().unwrap().iter().filter(|s| !s.canary).count()
    }

    /// Aggregate queued requests across live non-canary replicas.
    pub fn fleet_depth(&self) -> usize {
        self.slots
            .read()
            .unwrap()
            .iter()
            .filter(|s| !s.canary)
            .map(|s| s.server.queue_depth())
            .sum()
    }

    fn per_replica_watermark(&self) -> usize {
        self.cfg
            .replica
            .shed_watermark
            .unwrap_or(self.cfg.replica.queue_capacity)
            .min(self.cfg.replica.queue_capacity)
    }

    /// [`Router::infer_with_priority`] at [`Priority::Standard`] with no
    /// deadline.
    pub fn infer(&self, input: Tensor) -> Result<InferResult, ServeError> {
        self.infer_with_priority(input, Priority::Standard, None)
    }

    /// Routes one request through fleet admission, the canary split and
    /// the dispatch policy; a replica that dies holding the request is
    /// retired and the request rerouted within
    /// [`FleetConfig::reroute_budget`].
    pub fn infer_with_priority(
        &self,
        input: Tensor,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<InferResult, ServeError> {
        let ordinal = self.ordinal.fetch_add(1, Ordering::Relaxed);
        {
            let mut w = self.window.lock().unwrap();
            w.arrivals += 1;
        }
        // Fleet-level priority admission against aggregate headroom.
        let p = priority.index();
        let backlog = self.fleet_depth();
        let live = self.live_replicas().max(1);
        let headroom = (live * self.per_replica_watermark()) as f64;
        if backlog as f64 >= self.cfg.admission.shed_frac[p] * headroom {
            self.fleet_shed[p].fetch_add(1, Ordering::Relaxed);
            let bpd = self.cfg.replica.policy.max_batch.max(1);
            let hint = self
                .cfg
                .replica
                .policy
                .max_delay
                .max(Duration::from_millis(1))
                .saturating_mul((backlog / bpd) as u32 + 1);
            return Err(ServeError::Shed { depth: backlog, retry_after: hint });
        }
        // Seeded canary traffic split.
        let canary_slot = {
            let c = self.canary.lock().unwrap();
            c.as_ref().and_then(|st| {
                (rand01(self.cfg.seed, SALT_CANARY, ordinal) < st.cfg.fraction)
                    .then_some(st.slot_id)
            })
        };
        let start = Instant::now();
        let mut avoid: Option<usize> = None;
        let mut attempt: u32 = 0;
        loop {
            let remaining = match deadline {
                Some(d) => {
                    let left = d.saturating_sub(start.elapsed());
                    if left.is_zero() {
                        return Err(ServeError::DeadlineExceeded);
                    }
                    Some(left)
                }
                None => None,
            };
            let picked = self.pick(ordinal, canary_slot.filter(|_| attempt == 0), avoid);
            let (rid, depth, client, is_canary) = match picked {
                Some(t) => t,
                None => return Err(ServeError::Closed),
            };
            if self.tr.enabled() {
                self.tr.instant(rid as u64, EventKind::Route {
                    replica: rid as u64,
                    depth: depth as u64,
                    policy: if is_canary { "canary" } else { self.cfg.dispatch.name() },
                });
            }
            match client.infer_with_deadline(input.clone(), remaining) {
                Ok(r) => {
                    self.routed.fetch_add(1, Ordering::Relaxed);
                    let lat = r.queue_wait.as_secs_f64() + r.compute.as_secs_f64();
                    self.window.lock().unwrap().samples.push(lat);
                    let mut c = self.canary.lock().unwrap();
                    if let Some(st) = c.as_mut() {
                        if is_canary {
                            st.canary_lat.push(lat);
                        } else {
                            st.base_lat.push(lat);
                        }
                    }
                    return Ok(r);
                }
                Err(e @ (ServeError::WorkerLost | ServeError::Closed)) => {
                    if matches!(e, ServeError::Closed) {
                        // The replica's pool is gone: retire it so no
                        // future request routes there.
                        self.retire_slot(rid, true);
                    }
                    if attempt >= self.cfg.reroute_budget {
                        return Err(e);
                    }
                    attempt += 1;
                    avoid = Some(rid);
                    self.rerouted.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Picks `(replica id, depth, client, is_canary)` under the read
    /// lock, then drops the lock so the blocking infer call cannot
    /// deadlock scale operations.
    fn pick(
        &self,
        ordinal: u64,
        canary_slot: Option<usize>,
        avoid: Option<usize>,
    ) -> Option<(usize, usize, Client, bool)> {
        let slots = self.slots.read().unwrap();
        if let Some(cid) = canary_slot {
            if let Some(s) = slots.iter().find(|s| s.id == cid && s.canary) {
                return Some((s.id, s.server.queue_depth(), s.client.clone(), true));
            }
        }
        let live: Vec<&Slot> = slots
            .iter()
            .filter(|s| !s.canary && Some(s.id) != avoid)
            .collect();
        let live = if live.is_empty() {
            // Only the avoided replica remains: better to retry it than
            // to fail outright.
            slots.iter().filter(|s| !s.canary).collect::<Vec<_>>()
        } else {
            live
        };
        if live.is_empty() {
            return None;
        }
        let n = live.len();
        let s = match self.cfg.dispatch {
            DispatchPolicy::RoundRobin => live[self.rr.fetch_add(1, Ordering::Relaxed) % n],
            DispatchPolicy::LeastLoaded => live
                .iter()
                .map(|s| (s.server.queue_depth(), s.id, *s))
                .min_by_key(|(d, id, _)| (*d, *id))
                .map(|(_, _, s)| s)
                .unwrap(),
            DispatchPolicy::PowerOfTwoChoices => {
                let i = ((rand01(self.cfg.seed, SALT_P2C_A, ordinal) * n as f64) as usize)
                    .min(n - 1);
                let j = ((rand01(self.cfg.seed, SALT_P2C_B, ordinal) * n as f64) as usize)
                    .min(n - 1);
                let (a, b) = (live[i], live[j]);
                if b.server.queue_depth() < a.server.queue_depth() { b } else { a }
            }
        };
        Some((s.id, s.server.queue_depth(), s.client.clone(), false))
    }

    /// Removes slot `id` (if still present), drains it and merges its
    /// latency recorder and report into the retired pool.
    fn retire_slot(&self, id: usize, lost: bool) {
        let slot = {
            let mut slots = self.slots.write().unwrap();
            match slots.iter().position(|s| s.id == id) {
                Some(i) => slots.remove(i),
                None => return,
            }
        };
        if lost {
            self.replicas_lost.fetch_add(1, Ordering::Relaxed);
            if self.tr.enabled() {
                self.tr.instant(id as u64, EventKind::ScaleDown {
                    replicas: self.live_replicas() as u64,
                    backlog: self.fleet_depth() as u64,
                });
            }
        }
        let (rec, rep) = slot.server.shutdown_with_report();
        let mut retired = self.retired.lock().unwrap();
        retired.recorder.merge(&rec);
        retired.reports.push(rep);
    }

    /// Starts a canary rollout: spawns a dedicated replica serving
    /// `candidate` (behind its own registry) and routes
    /// `cfg.fraction` of admitted traffic to it. Refused with
    /// [`SwapError::BreakerOpen`] while the live registry's breaker is
    /// open.
    ///
    /// # Panics
    /// If a canary is already in flight.
    pub fn begin_canary(
        &self,
        candidate: ServingModel,
        cfg: CanaryConfig,
        canary_faults: FaultPlan,
    ) -> Result<usize, SwapError> {
        if self.registry.breaker_open() {
            return Err(SwapError::BreakerOpen {
                failures: self.registry.consecutive_failures(),
            });
        }
        let mut guard = self.canary.lock().unwrap();
        assert!(guard.is_none(), "a canary rollout is already in flight");
        let registry = Arc::new(ModelRegistry::new(candidate));
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let slot = spawn_slot(&registry, &self.cfg.replica, id, canary_faults, true);
        self.slots.write().unwrap().push(slot);
        if self.tr.enabled() {
            self.tr.instant(id as u64, EventKind::Canary {
                action: "begin",
                replica: id as u64,
                fraction: cfg.fraction,
            });
        }
        *guard = Some(CanaryState {
            registry,
            cfg,
            slot_id: id,
            base_lat: Vec::new(),
            canary_lat: Vec::new(),
        });
        Ok(id)
    }

    /// Decides the in-flight canary: promotes the candidate fleet-wide
    /// (publishing its model through the shared registry and clearing
    /// the breaker streak) when its p99 is within tolerance of the base
    /// arms', rolls it back (charging the breaker) otherwise. Returns
    /// [`CanaryDecision::Pending`] while either arm lacks
    /// [`CanaryConfig::min_samples`].
    pub fn resolve_canary(&self) -> CanaryDecision {
        let state = {
            let mut guard = self.canary.lock().unwrap();
            match guard.as_ref() {
                None => return CanaryDecision::Pending,
                Some(st)
                    if st.base_lat.len() < st.cfg.min_samples
                        || st.canary_lat.len() < st.cfg.min_samples =>
                {
                    return CanaryDecision::Pending;
                }
                Some(_) => guard.take().unwrap(),
            }
        };
        let p99_base = percentile(&state.base_lat, 0.99);
        let p99_canary = percentile(&state.canary_lat, 0.99);
        let pass = p99_canary <= p99_base * (1.0 + state.cfg.regression_tol);
        self.retire_slot(state.slot_id, false);
        let decision = if pass && self.registry.breaker_open() {
            CanaryDecision::BreakerOpen
        } else if pass {
            self.registry.publish(state.registry.current());
            self.registry.record_rollout_success();
            self.flags.lock().unwrap().canary_promoted = true;
            CanaryDecision::Promoted
        } else {
            self.registry.record_rollout_failure("canary_slo");
            self.flags.lock().unwrap().canary_rolled_back = true;
            CanaryDecision::RolledBack
        };
        if self.tr.enabled() {
            self.tr.instant(state.slot_id as u64, EventKind::Canary {
                action: match decision {
                    CanaryDecision::Promoted => "promote",
                    _ => "rollback",
                },
                replica: state.slot_id as u64,
                fraction: state.cfg.fraction,
            });
        }
        decision
    }

    /// One autoscaler step: consumes the observation window (arrival
    /// rate, p99) accumulated since the previous tick, computes the
    /// desired size against [`AutoscalerConfig`], and grows or shrinks
    /// the fleet by at most one replica. Returns the live replica count
    /// after the step.
    pub fn autoscale_tick(&self) -> usize {
        let a = self.cfg.autoscaler;
        let (rate, p99) = {
            let mut w = self.window.lock().unwrap();
            let secs = w.since.elapsed().as_secs_f64().max(1e-9);
            let rate = w.arrivals as f64 / secs;
            let p99 = if w.samples.is_empty() { 0.0 } else { percentile(&w.samples, 0.99) };
            w.arrivals = 0;
            w.samples.clear();
            w.since = Instant::now();
            (rate, p99)
        };
        let live = self.live_replicas();
        let mut desired =
            ((rate / (a.replica_rate * a.target_util)).ceil() as usize).max(1);
        if p99 > a.slo_p99_secs {
            desired = desired.max(live + 1);
        }
        let desired = desired.clamp(a.min_replicas, a.max_replicas);
        let backlog = self.fleet_depth();
        if desired > live {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            let wpr = self.cfg.replica.workers;
            let slot = spawn_slot(
                &self.registry,
                &self.cfg.replica,
                id,
                self.cfg.faults.for_replica(id, wpr),
                false,
            );
            self.slots.write().unwrap().push(slot);
            self.scale_ups.fetch_add(1, Ordering::Relaxed);
            if self.tr.enabled() {
                self.tr.instant(id as u64, EventKind::ScaleUp {
                    replicas: (live + 1) as u64,
                    backlog: backlog as u64,
                });
            }
        } else if desired < live && live > a.min_replicas && backlog <= a.scale_down_backlog * live
        {
            // Victim: the shallowest non-canary queue, ties toward the
            // youngest replica.
            let victim = {
                let slots = self.slots.read().unwrap();
                slots
                    .iter()
                    .filter(|s| !s.canary)
                    .map(|s| (s.server.queue_depth(), std::cmp::Reverse(s.id), s.id))
                    .min()
                    .map(|(_, _, id)| id)
            };
            if let Some(id) = victim {
                self.retire_slot(id, false);
                self.scale_downs.fetch_add(1, Ordering::Relaxed);
                if self.tr.enabled() {
                    self.tr.instant(id as u64, EventKind::ScaleDown {
                        replicas: (live - 1) as u64,
                        backlog: backlog as u64,
                    });
                }
            }
        }
        self.live_replicas()
    }

    /// Snapshot of the fleet counters plus aggregated per-replica
    /// reports (live and retired).
    pub fn report(&self) -> FleetReport {
        let mut servers = ServerReport::default();
        for s in self.slots.read().unwrap().iter() {
            merge_reports(&mut servers, &s.server.report());
        }
        for r in &self.retired.lock().unwrap().reports {
            merge_reports(&mut servers, r);
        }
        let flags = self.flags.lock().unwrap();
        FleetReport {
            routed: self.routed.load(Ordering::Relaxed),
            fleet_shed: [
                self.fleet_shed[0].load(Ordering::Relaxed),
                self.fleet_shed[1].load(Ordering::Relaxed),
                self.fleet_shed[2].load(Ordering::Relaxed),
            ],
            rerouted: self.rerouted.load(Ordering::Relaxed),
            replicas_lost: self.replicas_lost.load(Ordering::Relaxed),
            scale_ups: self.scale_ups.load(Ordering::Relaxed),
            scale_downs: self.scale_downs.load(Ordering::Relaxed),
            canary_promoted: flags.canary_promoted,
            canary_rolled_back: flags.canary_rolled_back,
            final_replicas: self.slots.read().unwrap().iter().filter(|s| !s.canary).count(),
            servers,
        }
    }

    /// Drains and shuts down every replica; returns the merged latency
    /// recorder and the final fleet report.
    pub fn shutdown_with_report(self) -> (LatencyRecorder, FleetReport) {
        let mut report = self.report();
        report.final_replicas = self.live_replicas();
        let slots: Vec<Slot> = self.slots.write().unwrap().drain(..).collect();
        let mut retired = self.retired.into_inner().unwrap();
        for s in slots {
            let (rec, rep) = s.server.shutdown_with_report();
            retired.recorder.merge(&rec);
            retired.reports.push(rep);
        }
        let mut servers = ServerReport::default();
        for r in &retired.reports {
            merge_reports(&mut servers, r);
        }
        report.servers = servers;
        (retired.recorder, report)
    }
}

// ---------------------------------------------------------------------------
// Virtual-time fleet simulator.
// ---------------------------------------------------------------------------

/// Autoscaler knobs for the fleet simulator, evaluated at fixed
/// virtual-time ticks.
#[derive(Clone, Copy, Debug)]
pub struct SimAutoscaler {
    /// Lower bound on routable replicas.
    pub min_replicas: usize,
    /// Upper bound on routable replicas.
    pub max_replicas: usize,
    /// Target utilisation of the per-replica saturated rate.
    pub target_util: f64,
    /// Interval between autoscaler evaluations (virtual seconds).
    pub tick_secs: f64,
    /// Delay before a scaled-up replica's workers accept batches.
    pub startup_secs: f64,
    /// Scale-down only when fleet backlog ≤ this per live replica.
    pub scale_down_backlog: usize,
}

impl Default for SimAutoscaler {
    fn default() -> Self {
        Self {
            min_replicas: 1,
            max_replicas: 8,
            target_util: 0.7,
            tick_secs: 0.25,
            startup_secs: 0.05,
            scale_down_backlog: 2,
        }
    }
}

/// Canary rollout knobs for the fleet simulator.
#[derive(Clone, Copy, Debug)]
pub struct SimCanary {
    /// Virtual time the canary replica starts taking traffic.
    pub start_secs: f64,
    /// Virtual time the promote/rollback decision is taken.
    pub decide_secs: f64,
    /// Fraction of admitted traffic routed to the canary.
    pub fraction: f64,
    /// Service-time multiplier of the candidate model (1.0 = identical
    /// cost to the live model; larger = an injected SLO regression).
    pub service_factor: f64,
    /// Promote iff `canary_p99 ≤ base_p99 × (1 + regression_tol)`.
    pub regression_tol: f64,
    /// Iteration stamp of the candidate model (the outcome's
    /// `final_iteration` proves which model ended up serving).
    pub candidate_iteration: u64,
}

/// Fleet-level virtual-time configuration, extending the per-replica
/// [`SimConfig`].
///
/// `base` supplies the per-replica semantics (workers per replica,
/// queue, policy, watermark, deadlines, breaker threshold, re-queue
/// budget). Two `base` fields are reinterpreted at fleet scope:
///
/// * `base.faults` worker indices are **global**: replica `r` owns
///   workers `[r·w, (r+1)·w)` for `w = base.workers`, exactly like the
///   threaded [`FleetConfig::faults`] plan.
/// * `base.swap_schedule` / `base.breaker_resets` are **ignored** —
///   fleet rollouts happen through the [`SimCanary`] machinery, whose
///   rollbacks charge the same breaker model
///   (`base.breaker_threshold`).
#[derive(Clone, Debug)]
pub struct FleetSimConfig {
    /// Per-replica serving semantics (see the type-level docs for the
    /// fields reinterpreted at fleet scope).
    pub base: SimConfig,
    /// Initial replica count.
    pub replicas: usize,
    /// Dispatch policy.
    pub dispatch: DispatchPolicy,
    /// Seed for the routing RNG (priority draw, canary split, p2c).
    pub seed: u64,
    /// Fleet-level priority admission thresholds.
    pub admission: PriorityAdmission,
    /// Relative weights of the three priority classes assigned to
    /// arrivals by the seeded draw (need not sum to 1).
    pub priority_mix: [f64; 3],
    /// Reroutes a request survives after its replica dies holding it.
    pub reroute_budget: u32,
    /// Optional SLO autoscaler.
    pub autoscaler: Option<SimAutoscaler>,
    /// Optional canary rollout.
    pub canary: Option<SimCanary>,
}

impl FleetSimConfig {
    /// A fleet of `replicas` identical replicas with default admission,
    /// a standard-heavy priority mix, and neither autoscaler nor canary.
    pub fn new(replicas: usize, base: SimConfig, dispatch: DispatchPolicy) -> Self {
        Self {
            base,
            replicas,
            dispatch,
            seed: 0,
            admission: PriorityAdmission::default(),
            priority_mix: [0.2, 0.5, 0.3],
            reroute_budget: 1,
            autoscaler: None,
            canary: None,
        }
    }
}

/// Everything the fleet simulation observed.
pub struct FleetSimOutcome {
    /// Queue-wait / compute split of every served request.
    pub recorder: LatencyRecorder,
    /// Requests served to completion (any replica).
    pub completed: usize,
    /// Requests shed at a replica's watermark (after routing).
    pub rejected: usize,
    /// Requests shed by fleet-level priority admission, per class.
    pub fleet_shed: [usize; 3],
    /// Requests shed in a queue when their deadline lapsed.
    pub expired: usize,
    /// Requests lost to crashes after exhausting both the re-queue and
    /// the reroute budgets.
    pub lost: usize,
    /// Cross-replica reroutes of crash-orphaned requests.
    pub rerouted: usize,
    /// Same-replica re-queues of crash-recovered requests.
    pub requeued: usize,
    /// Worker crashes that fired.
    pub crashes: usize,
    /// Autoscaler scale-up steps.
    pub scale_ups: usize,
    /// Autoscaler scale-down steps.
    pub scale_downs: usize,
    /// Σ over replicas of (retirement − birth) virtual seconds — the
    /// fleet's cost denominator.
    pub replica_seconds: f64,
    /// Routable replicas when the simulation ended.
    pub final_replicas: usize,
    /// Whether the canary was promoted.
    pub canary_promoted: bool,
    /// Whether the canary was rolled back.
    pub canary_rolled_back: bool,
    /// Requests the canary replica served.
    pub canary_served: usize,
    /// Whether rollout failures opened the breaker.
    pub breaker_opened: bool,
    /// Iteration of the model serving at the end (the candidate's after
    /// a promotion, the original's otherwise).
    pub final_iteration: u64,
    /// Ids of served requests, in dispatch order.
    pub served_ids: Vec<usize>,
    /// Ids of requests shed at admission (fleet or watermark), in
    /// arrival order.
    pub rejected_ids: Vec<usize>,
    /// Ids of deadline-expired requests, in expiry order.
    pub expired_ids: Vec<usize>,
    /// Ids of crash-lost requests, in loss order.
    pub lost_ids: Vec<usize>,
    /// Size of every dispatched batch, in dispatch order.
    pub batch_sizes: Vec<usize>,
    /// Virtual time at which the fleet went fully idle.
    pub makespan: f64,
}

impl FleetSimOutcome {
    /// Sustained goodput: served requests per virtual second.
    pub fn throughput(&self) -> f64 {
        if self.makespan > 0.0 { self.completed as f64 / self.makespan } else { 0.0 }
    }

    /// Total requests offered across every terminal category.
    pub fn offered(&self) -> usize {
        self.completed
            + self.rejected
            + self.fleet_shed.iter().sum::<usize>()
            + self.expired
            + self.lost
    }

    /// Fraction of offered requests that did not get an answer.
    pub fn shed_rate(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            0.0
        } else {
            (offered - self.completed) as f64 / offered as f64
        }
    }

    /// p99 of served total latency (0 when nothing was served).
    pub fn p99(&self) -> f64 {
        self.recorder.total_summary().map(|s| s.p99).unwrap_or(0.0)
    }
}

#[derive(Clone, Copy)]
struct FQ {
    id: usize,
    arrived: f64,
    deadline: Option<f64>,
    attempts: u32,
    reroutes: u32,
}

struct Rep {
    id: usize,
    canary: bool,
    /// Service-time multiplier (canary candidates may be slower).
    factor: f64,
    born: f64,
    draining: Option<f64>,
    retired: Option<f64>,
    queue: Vec<FQ>,
    worker_free: Vec<f64>,
    slot_batches: Vec<u64>,
}

impl Rep {
    fn new(id: usize, workers: usize, born: f64, ready: f64, canary: bool, factor: f64) -> Self {
        Self {
            id,
            canary,
            factor,
            born,
            draining: None,
            retired: None,
            queue: Vec::new(),
            worker_free: vec![ready; workers],
            slot_batches: vec![0; workers],
        }
    }

    /// Whether the router may send new traffic here.
    fn routable(&self) -> bool {
        !self.canary && self.draining.is_none() && self.retired.is_none()
    }

    /// Whether the canary split may send traffic here.
    fn canary_routable(&self) -> bool {
        self.canary && self.draining.is_none() && self.retired.is_none()
    }
}

struct FleetSim<'a> {
    model: &'a ServiceModel,
    cfg: &'a FleetSimConfig,
    wpr: usize,
    watermark: usize,
    max_delay: f64,
    reps: Vec<Rep>,
    next_rep_id: usize,
    crash_fired: Vec<bool>,
    rr: usize,
    arrivals_since_tick: u64,
    canary_active: bool,
    base_lat: Vec<f64>,
    canary_lat: Vec<f64>,
    rollout_failures: u32,
    current_iteration: u64,
    tr: TraceHandle,
    out: FleetSimOutcome,
}

impl FleetSim<'_> {
    fn backlog(&self) -> usize {
        self.reps.iter().filter(|r| r.routable()).map(|r| r.queue.len()).sum()
    }

    fn live(&self) -> usize {
        self.reps.iter().filter(|r| r.routable()).count()
    }

    /// Sheds deadline-lapsed requests from one replica's queue.
    fn expire_rep(&mut self, ri: usize, cut: f64) -> usize {
        if self.cfg.base.deadline_secs.is_none() {
            return 0;
        }
        let rep = &mut self.reps[ri];
        let before = rep.queue.len();
        let mut kept = Vec::with_capacity(before);
        for q in rep.queue.drain(..) {
            if q.deadline.is_some_and(|d| d <= cut) {
                self.out.expired += 1;
                self.out.expired_ids.push(q.id);
            } else {
                kept.push(q);
            }
        }
        rep.queue = kept;
        before - self.reps[ri].queue.len()
    }

    /// Drains one replica's batches up to `t_limit`, pushing
    /// crash-orphaned requests that exhausted their re-queue budget (but
    /// still hold reroute budget) into `reroutes`. Mirrors the
    /// single-replica `SimState::drain_until` semantics exactly, with
    /// crash/straggler plans indexed by *global* worker id.
    fn drain_rep(&mut self, ri: usize, t_limit: f64, reroutes: &mut Vec<(FQ, usize)>) {
        loop {
            if self.reps[ri].queue.is_empty() {
                break;
            }
            let max_batch = self.cfg.base.policy.max_batch;
            let rep = &self.reps[ri];
            let trigger = if rep.queue.len() >= max_batch {
                rep.queue[max_batch - 1].arrived
            } else {
                rep.queue[0].arrived + self.max_delay
            };
            let free = rep.worker_free.iter().cloned().fold(f64::INFINITY, f64::min);
            let start = trigger.max(free).max(rep.queue[0].arrived);
            if self.expire_rep(ri, start.min(t_limit)) > 0 {
                continue;
            }
            if start > t_limit {
                break;
            }
            let rep = &self.reps[ri];
            let eligible = rep.queue.iter().take_while(|q| q.arrived <= start).count();
            let b = eligible.min(max_batch);
            let slot = rep
                .worker_free
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            let global = rep.id * self.wpr + slot;
            let svc = self.model.batch_secs(b)
                * self.cfg.base.faults.slow_worker_factor(global, rep.slot_batches[slot])
                * rep.factor;
            let crash = self.cfg.base.faults.worker_crashes.iter().enumerate().find(
                |(ci, c)| {
                    c.worker == global
                        && rep.slot_batches[slot] >= c.after_batches
                        && !self.crash_fired[*ci]
                },
            );
            if let Some((ci, c)) = crash {
                let t_crash = start + 0.5 * svc;
                let respawn = c.respawn_secs;
                self.crash_fired[ci] = true;
                self.out.crashes += 1;
                let max_requeues = self.cfg.base.max_requeues;
                let budget = self.cfg.reroute_budget;
                let rep = &mut self.reps[ri];
                rep.worker_free[slot] = t_crash + respawn;
                self.out.makespan = self.out.makespan.max(rep.worker_free[slot]);
                let mut recovered = Vec::with_capacity(b);
                for mut q in rep.queue.drain(..b) {
                    q.attempts += 1;
                    if q.attempts > max_requeues {
                        if q.reroutes < budget {
                            q.reroutes += 1;
                            q.attempts = 0;
                            q.arrived = t_crash;
                            reroutes.push((q, ri));
                        } else {
                            self.out.lost += 1;
                            self.out.lost_ids.push(q.id);
                        }
                    } else {
                        q.arrived = t_crash;
                        self.out.requeued += 1;
                        recovered.push(q);
                    }
                }
                let n = recovered.len() as u64;
                rep.queue.splice(0..0, recovered);
                if self.tr.enabled() {
                    self.tr.event_at(
                        global as u64,
                        t_crash,
                        respawn,
                        EventKind::WorkerRespawn {
                            worker: global as u64,
                            incarnation: self.out.crashes as u64,
                            backoff_s: respawn,
                            requeued: n,
                        },
                    );
                }
                continue;
            }
            let rep = &self.reps[ri];
            if self.tr.enabled() {
                let queue_s = start - rep.queue[0].arrived;
                self.tr.event_at(global as u64, start, svc, EventKind::BatchDispatch {
                    worker: global as u64,
                    batch: b as u64,
                    queue_s,
                    compute_s: svc,
                });
            }
            let is_canary = rep.canary;
            let canary_window = self.canary_active;
            for q in &rep.queue[..b] {
                let wait = start - q.arrived;
                self.out.recorder.push(wait, svc);
                self.out.served_ids.push(q.id);
                if canary_window {
                    if is_canary {
                        self.canary_lat.push(wait + svc);
                    } else {
                        self.base_lat.push(wait + svc);
                    }
                }
            }
            if is_canary {
                self.out.canary_served += b;
            }
            self.out.batch_sizes.push(b);
            self.out.completed += b;
            let end = start + svc;
            self.out.makespan = self.out.makespan.max(end);
            let rep = &mut self.reps[ri];
            rep.worker_free[slot] = end;
            rep.slot_batches[slot] += 1;
            rep.queue.drain(..b);
        }
        // A draining replica retires once its queue is empty: record the
        // instant its last worker goes idle.
        let rep = &mut self.reps[ri];
        if rep.queue.is_empty() && rep.retired.is_none() {
            if let Some(since) = rep.draining {
                let idle = rep.worker_free.iter().cloned().fold(since, f64::max);
                rep.retired = Some(idle);
                self.out.makespan = self.out.makespan.max(idle);
            }
        }
    }

    /// Drains every replica up to `t`, rerouting crash-orphaned work to
    /// sibling replicas until no reroutes remain.
    fn drain_all(&mut self, t: f64) {
        loop {
            let mut buf: Vec<(FQ, usize)> = Vec::new();
            for ri in 0..self.reps.len() {
                self.drain_rep(ri, t, &mut buf);
            }
            if buf.is_empty() {
                return;
            }
            for (q, src) in buf {
                // Least-loaded placement, excluding the dead replica —
                // unless it is the only one left.
                let target = self
                    .reps
                    .iter()
                    .enumerate()
                    .filter(|(i, r)| r.routable() && *i != src)
                    .min_by_key(|(_, r)| (r.queue.len(), r.id))
                    .map(|(i, _)| i)
                    .or_else(|| {
                        self.reps
                            .iter()
                            .enumerate()
                            .filter(|(_, r)| r.routable())
                            .min_by_key(|(_, r)| (r.queue.len(), r.id))
                            .map(|(i, _)| i)
                    });
                match target {
                    Some(ti) => {
                        self.out.rerouted += 1;
                        if self.tr.enabled() {
                            self.tr.event_at(
                                self.reps[ti].id as u64,
                                q.arrived,
                                0.0,
                                EventKind::Route {
                                    replica: self.reps[ti].id as u64,
                                    depth: self.reps[ti].queue.len() as u64,
                                    policy: "reroute",
                                },
                            );
                        }
                        let rep = &mut self.reps[ti];
                        let pos = rep.queue.partition_point(|x| x.arrived <= q.arrived);
                        rep.queue.insert(pos, q);
                    }
                    None => {
                        self.out.lost += 1;
                        self.out.lost_ids.push(q.id);
                    }
                }
            }
        }
    }

    /// Routes one arrival: priority draw, fleet admission, canary
    /// split, dispatch policy, replica watermark.
    fn arrival(&mut self, id: usize, t: f64) {
        self.arrivals_since_tick += 1;
        let mix = self.cfg.priority_mix;
        let total: f64 = mix.iter().sum();
        let draw = rand01(self.cfg.seed, SALT_PRIORITY, id as u64) * total;
        let p = if draw < mix[0] {
            0
        } else if draw < mix[0] + mix[1] {
            1
        } else {
            2
        };
        let live = self.live();
        if live == 0 {
            self.out.rejected += 1;
            self.out.rejected_ids.push(id);
            return;
        }
        let backlog = self.backlog();
        let headroom = (live * self.watermark) as f64;
        if backlog as f64 >= self.cfg.admission.shed_frac[p] * headroom {
            self.out.fleet_shed[p] += 1;
            self.out.rejected_ids.push(id);
            if self.tr.enabled() {
                self.tr.event_at(u64::MAX, t, 0.0, EventKind::Shed {
                    worker: u64::MAX,
                    count: 1,
                    depth: backlog as u64,
                    reason: "fleet",
                });
            }
            return;
        }
        // Canary split.
        if self.canary_active {
            let fraction = self.cfg.canary.map(|c| c.fraction).unwrap_or(0.0);
            if rand01(self.cfg.seed, SALT_CANARY, id as u64) < fraction {
                if let Some(ci) = self.reps.iter().position(|r| r.canary_routable()) {
                    self.admit(ci, id, t, "canary");
                    return;
                }
            }
        }
        let candidates: Vec<usize> = self
            .reps
            .iter()
            .enumerate()
            .filter(|(_, r)| r.routable())
            .map(|(i, _)| i)
            .collect();
        let n = candidates.len();
        let chosen = match self.cfg.dispatch {
            DispatchPolicy::RoundRobin => {
                let i = candidates[self.rr % n];
                self.rr += 1;
                i
            }
            DispatchPolicy::LeastLoaded => *candidates
                .iter()
                .min_by_key(|&&i| (self.reps[i].queue.len(), self.reps[i].id))
                .unwrap(),
            DispatchPolicy::PowerOfTwoChoices => {
                let a = ((rand01(self.cfg.seed, SALT_P2C_A, id as u64) * n as f64) as usize)
                    .min(n - 1);
                let b = ((rand01(self.cfg.seed, SALT_P2C_B, id as u64) * n as f64) as usize)
                    .min(n - 1);
                let (ca, cb) = (candidates[a], candidates[b]);
                if self.reps[cb].queue.len() < self.reps[ca].queue.len() { cb } else { ca }
            }
        };
        self.admit(chosen, id, t, self.cfg.dispatch.name());
    }

    /// Admits one request onto replica `ri`, or sheds it at the
    /// replica's watermark.
    fn admit(&mut self, ri: usize, id: usize, t: f64, policy: &'static str) {
        let depth = self.reps[ri].queue.len();
        if depth >= self.watermark {
            self.out.rejected += 1;
            self.out.rejected_ids.push(id);
            if self.tr.enabled() {
                self.tr.event_at(self.reps[ri].id as u64, t, 0.0, EventKind::Shed {
                    worker: u64::MAX,
                    count: 1,
                    depth: depth as u64,
                    reason: "watermark",
                });
            }
            return;
        }
        if self.tr.enabled() {
            self.tr.event_at(self.reps[ri].id as u64, t, 0.0, EventKind::Route {
                replica: self.reps[ri].id as u64,
                depth: depth as u64,
                policy,
            });
        }
        let deadline = self.cfg.base.deadline_secs.map(|d| t + d);
        self.reps[ri].queue.push(FQ { id, arrived: t, deadline, attempts: 0, reroutes: 0 });
    }

    /// Handles a scheduled event (0 = autoscaler tick, 1 = canary
    /// start, 2 = canary decision) at virtual time `et`.
    fn handle_event(&mut self, et: f64, kind: u8) {
        match kind {
            0 => self.autoscale(et),
            1 => {
                let c = self.cfg.canary.expect("canary event without config");
                let id = self.next_rep_id;
                self.next_rep_id += 1;
                self.reps.push(Rep::new(id, self.wpr, et, et, true, c.service_factor));
                self.canary_active = true;
                if self.tr.enabled() {
                    self.tr.event_at(id as u64, et, 0.0, EventKind::Canary {
                        action: "begin",
                        replica: id as u64,
                        fraction: c.fraction,
                    });
                }
            }
            2 => self.decide_canary(et),
            _ => unreachable!(),
        }
    }

    fn autoscale(&mut self, et: f64) {
        let a = self.cfg.autoscaler.expect("autoscale tick without config");
        let rate = self.arrivals_since_tick as f64 / a.tick_secs;
        self.arrivals_since_tick = 0;
        let per_rep = self.wpr as f64
            * self.model.saturated_rate(self.cfg.base.policy.max_batch);
        let desired = (((rate / (per_rep * a.target_util)).ceil() as usize).max(1))
            .clamp(a.min_replicas, a.max_replicas);
        let live = self.live();
        let backlog = self.backlog();
        if desired > live {
            let id = self.next_rep_id;
            self.next_rep_id += 1;
            self.reps
                .push(Rep::new(id, self.wpr, et, et + a.startup_secs, false, 1.0));
            self.out.scale_ups += 1;
            if self.tr.enabled() {
                self.tr.event_at(id as u64, et, a.startup_secs, EventKind::ScaleUp {
                    replicas: (live + 1) as u64,
                    backlog: backlog as u64,
                });
            }
        } else if desired < live
            && live > a.min_replicas
            && backlog <= a.scale_down_backlog * live
        {
            let victim = self
                .reps
                .iter()
                .enumerate()
                .filter(|(_, r)| r.routable())
                .min_by_key(|(_, r)| (r.queue.len(), std::cmp::Reverse(r.id)))
                .map(|(i, _)| i);
            if let Some(vi) = victim {
                self.reps[vi].draining = Some(et);
                self.out.scale_downs += 1;
                if self.tr.enabled() {
                    self.tr.event_at(
                        self.reps[vi].id as u64,
                        et,
                        0.0,
                        EventKind::ScaleDown {
                            replicas: (live - 1) as u64,
                            backlog: backlog as u64,
                        },
                    );
                }
            }
        }
    }

    fn decide_canary(&mut self, et: f64) {
        let c = self.cfg.canary.expect("canary decision without config");
        self.canary_active = false;
        let ci = match self.reps.iter().position(|r| r.canary) {
            Some(i) => i,
            None => return,
        };
        let pass = !self.canary_lat.is_empty()
            && !self.base_lat.is_empty()
            && percentile(&self.canary_lat, 0.99)
                <= percentile(&self.base_lat, 0.99) * (1.0 + c.regression_tol);
        if pass {
            // Promote: the candidate serves everywhere from here on.
            self.current_iteration = c.candidate_iteration;
            for r in &mut self.reps {
                r.factor = c.service_factor;
            }
            self.reps[ci].canary = false;
            self.out.canary_promoted = true;
        } else {
            // Rollback: drain the canary replica; the regression is a
            // rollout failure charged to the breaker.
            self.reps[ci].draining = Some(et);
            self.out.canary_rolled_back = true;
            self.rollout_failures += 1;
            if self.rollout_failures >= self.cfg.base.breaker_threshold {
                self.out.breaker_opened = true;
                if self.tr.enabled() {
                    self.tr.event_at(u64::MAX, et, 0.0, EventKind::Breaker {
                        open: true,
                        failures: self.rollout_failures as u64,
                    });
                }
            }
        }
        if self.tr.enabled() {
            self.tr.event_at(self.reps[ci].id as u64, et, 0.0, EventKind::Canary {
                action: if pass { "promote" } else { "rollback" },
                replica: self.reps[ci].id as u64,
                fraction: c.fraction,
            });
        }
    }
}

/// Replays `arrivals` (sorted virtual timestamps, request id = index)
/// through the replicated router model — dispatch policy, priority
/// admission, canary rollout, autoscaler and the global chaos plan —
/// and returns the full fleet outcome. Bit-deterministic in all inputs.
pub fn simulate_fleet(
    model: &ServiceModel,
    arrivals: &[f64],
    cfg: &FleetSimConfig,
) -> FleetSimOutcome {
    assert!(cfg.replicas >= 1, "fleet needs at least one replica");
    assert!(cfg.base.workers >= 1 && cfg.base.queue_capacity >= 1);
    assert!(
        arrivals.windows(2).all(|w| w[1] >= w[0]),
        "arrival schedule must be sorted"
    );
    assert!(
        cfg.priority_mix.iter().sum::<f64>() > 0.0,
        "priority mix must have positive mass"
    );
    let watermark = cfg
        .base
        .shed_watermark
        .unwrap_or(cfg.base.queue_capacity)
        .min(cfg.base.queue_capacity);
    assert!(watermark >= 1, "shed watermark must be at least 1");

    // Scheduled events: autoscaler ticks while arrivals flow, plus the
    // canary start/decide pair. Ties process in (tick, start, decide)
    // order.
    let mut events: Vec<(f64, u8)> = Vec::new();
    if let Some(a) = &cfg.autoscaler {
        assert!(a.tick_secs > 0.0, "autoscaler tick must be positive");
        let last = arrivals.last().copied().unwrap_or(0.0);
        let mut k = 1u64;
        while k as f64 * a.tick_secs <= last {
            events.push((k as f64 * a.tick_secs, 0));
            k += 1;
        }
    }
    if let Some(c) = &cfg.canary {
        assert!(c.decide_secs > c.start_secs, "canary must decide after it starts");
        events.push((c.start_secs, 1));
        events.push((c.decide_secs, 2));
    }
    events.sort_by(|a, b| f64::total_cmp(&a.0, &b.0).then(a.1.cmp(&b.1)));

    let mut st = FleetSim {
        model,
        cfg,
        wpr: cfg.base.workers,
        watermark,
        max_delay: cfg.base.policy.max_delay.as_secs_f64(),
        reps: (0..cfg.replicas)
            .map(|id| Rep::new(id, cfg.base.workers, 0.0, 0.0, false, 1.0))
            .collect(),
        next_rep_id: cfg.replicas,
        crash_fired: vec![false; cfg.base.faults.worker_crashes.len()],
        rr: 0,
        arrivals_since_tick: 0,
        canary_active: false,
        base_lat: Vec::new(),
        canary_lat: Vec::new(),
        rollout_failures: 0,
        current_iteration: 0,
        tr: TraceHandle::begin("fleet-sim"),
        out: FleetSimOutcome {
            recorder: LatencyRecorder::new(),
            completed: 0,
            rejected: 0,
            fleet_shed: [0; 3],
            expired: 0,
            lost: 0,
            rerouted: 0,
            requeued: 0,
            crashes: 0,
            scale_ups: 0,
            scale_downs: 0,
            replica_seconds: 0.0,
            final_replicas: 0,
            canary_promoted: false,
            canary_rolled_back: false,
            canary_served: 0,
            breaker_opened: false,
            final_iteration: 0,
            served_ids: Vec::new(),
            rejected_ids: Vec::new(),
            expired_ids: Vec::new(),
            lost_ids: Vec::new(),
            batch_sizes: Vec::new(),
            makespan: 0.0,
        },
    };
    let mut ev = 0usize;
    for (id, &t) in arrivals.iter().enumerate() {
        while ev < events.len() && events[ev].0 <= t {
            let (et, kind) = events[ev];
            ev += 1;
            st.drain_all(et);
            st.handle_event(et, kind);
        }
        st.drain_all(t);
        st.arrival(id, t);
    }
    while ev < events.len() {
        let (et, kind) = events[ev];
        ev += 1;
        st.drain_all(et);
        st.handle_event(et, kind);
    }
    st.drain_all(f64::INFINITY);
    let makespan = st.out.makespan;
    st.out.replica_seconds = st
        .reps
        .iter()
        .map(|r| (r.retired.unwrap_or(makespan).max(r.born)) - r.born)
        .sum();
    st.out.final_replicas = st.reps.iter().filter(|r| r.routable()).count();
    st.out.final_iteration = st.current_iteration;
    st.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::PoissonArrivals;
    use crate::queue::BatchPolicy;
    use scidl_nn::arch::hep_small;
    use scidl_tensor::{Shape4, TensorRng};

    fn registry(seed: u64, iteration: u64) -> Arc<ModelRegistry> {
        let mut rng = TensorRng::new(seed);
        Arc::new(ModelRegistry::new(ServingModel::new(hep_small(&mut rng), iteration, seed)))
    }

    fn probe(seed: u64) -> Tensor {
        let mut rng = TensorRng::new(seed);
        rng.uniform_tensor(Shape4::new(1, 3, 32, 32), -1.0, 1.0)
    }

    fn base_cfg() -> SimConfig {
        SimConfig::new(2, 64, BatchPolicy::dynamic(8, std::time::Duration::from_millis(5)))
    }

    #[test]
    fn fleet_sim_is_bit_deterministic() {
        let m = ServiceModel::hep();
        let arrivals: Vec<f64> = PoissonArrivals::new(11, 600.0, 500).collect();
        let mut cfg = FleetSimConfig::new(3, base_cfg(), DispatchPolicy::PowerOfTwoChoices);
        cfg.seed = 42;
        let a = simulate_fleet(&m, &arrivals, &cfg);
        let b = simulate_fleet(&m, &arrivals, &cfg);
        assert_eq!(a.served_ids, b.served_ids);
        assert_eq!(a.batch_sizes, b.batch_sizes);
        assert_eq!(a.p99().to_bits(), b.p99().to_bits());
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        assert_eq!(a.replica_seconds.to_bits(), b.replica_seconds.to_bits());
    }

    #[test]
    fn p2c_beats_round_robin_p99_under_skewed_load() {
        let m = ServiceModel::hep();
        // Replica 0's workers are 4x stragglers for their whole life:
        // round-robin keeps feeding the hot replica, p2c's depth probes
        // steer around it once its queue grows. A deep queue keeps the
        // watermark from truncating round-robin's tail.
        let mut base =
            SimConfig::new(2, 512, BatchPolicy::dynamic(8, std::time::Duration::from_millis(5)));
        for w in 0..base.workers {
            base.faults = base.faults.clone().with_slow_worker(w, 0, u64::MAX, 4.0);
        }
        // Saturating offered load: per-replica capacity is ~2 workers *
        // saturated_rate(8); offer ~80% of 3 healthy replicas' worth so
        // the slow replica's queue visibly backs up.
        let rate = 3.0 * 2.0 * m.saturated_rate(8) * 0.8;
        let arrivals: Vec<f64> = PoissonArrivals::new(9, rate, 1500).collect();
        let p99 = |d: DispatchPolicy| {
            let mut cfg = FleetSimConfig::new(3, base.clone(), d);
            cfg.seed = 4242;
            // Single class: isolate dispatch from priority admission.
            cfg.priority_mix = [0.0, 1.0, 0.0];
            cfg.admission = PriorityAdmission { shed_frac: [1.0, 1.0, 1.0] };
            simulate_fleet(&m, &arrivals, &cfg).p99()
        };
        let rr = p99(DispatchPolicy::RoundRobin);
        let p2c = p99(DispatchPolicy::PowerOfTwoChoices);
        assert!(
            p2c <= rr,
            "p2c p99 {p2c:.4}s must not exceed round-robin p99 {rr:.4}s under skew"
        );
    }

    #[test]
    fn autoscaler_grows_under_burst_and_shrinks_when_quiet() {
        let m = ServiceModel::hep();
        let base = base_cfg();
        let per_rep = 2.0 * m.saturated_rate(8);
        // A burst at ~3 replicas' worth of load, then a long quiet tail.
        let burst: Vec<f64> = PoissonArrivals::new(5, 3.0 * per_rep, 1200).collect();
        let burst_end = *burst.last().unwrap();
        let mut arrivals = burst;
        for i in 0..40 {
            arrivals.push(burst_end + 0.5 + i as f64 * 0.5);
        }
        let mut cfg = FleetSimConfig::new(1, base, DispatchPolicy::LeastLoaded);
        cfg.autoscaler = Some(SimAutoscaler {
            min_replicas: 1,
            max_replicas: 6,
            target_util: 0.7,
            tick_secs: 0.2,
            startup_secs: 0.02,
            scale_down_backlog: 4,
        });
        let out = simulate_fleet(&m, &arrivals, &cfg);
        assert!(out.scale_ups >= 2, "burst must trigger scale-ups, got {}", out.scale_ups);
        assert!(out.scale_downs >= 1, "quiet tail must shrink, got {}", out.scale_downs);
        let a = cfg.autoscaler.unwrap();
        assert!(
            (a.min_replicas..=a.max_replicas).contains(&out.final_replicas),
            "final replica count {} outside [{}, {}]",
            out.final_replicas,
            a.min_replicas,
            a.max_replicas
        );
    }

    #[test]
    fn canary_promotes_equal_candidate_and_rolls_back_regression() {
        let m = ServiceModel::hep();
        let arrivals: Vec<f64> = PoissonArrivals::new(3, 400.0, 800).collect();
        let mk = |factor: f64| {
            let mut cfg = FleetSimConfig::new(2, base_cfg(), DispatchPolicy::LeastLoaded);
            cfg.seed = 7;
            cfg.base.breaker_threshold = 1;
            cfg.canary = Some(SimCanary {
                start_secs: 0.1,
                decide_secs: *arrivals.last().unwrap() * 0.9,
                fraction: 0.25,
                service_factor: factor,
                regression_tol: 0.25,
                candidate_iteration: 9000,
            });
            simulate_fleet(&m, &arrivals, &cfg)
        };
        let good = mk(1.0);
        assert!(good.canary_promoted && !good.canary_rolled_back);
        assert_eq!(good.final_iteration, 9000, "promotion must publish the candidate");
        assert!(good.canary_served > 0, "the canary must have taken traffic");
        let bad = mk(8.0);
        assert!(bad.canary_rolled_back && !bad.canary_promoted);
        assert_eq!(bad.final_iteration, 0, "rollback must leave the old model serving");
        assert!(bad.breaker_opened, "rollout failure must charge the breaker");
    }

    #[test]
    fn replica_crash_reroutes_without_losing_or_duplicating_requests() {
        let m = ServiceModel::hep();
        // Both workers of replica 0 crash early and respawn very late —
        // effectively a replica loss. With zero same-replica re-queues
        // every orphan must cross to replica 1 (or be counted lost).
        let mut base = base_cfg();
        base.max_requeues = 0;
        base.faults = base
            .faults
            .clone()
            .with_worker_crash(0, 1, 1e6)
            .with_worker_crash(1, 1, 1e6);
        let arrivals: Vec<f64> = PoissonArrivals::new(13, 500.0, 600).collect();
        let mut cfg = FleetSimConfig::new(2, base, DispatchPolicy::RoundRobin);
        cfg.seed = 99;
        cfg.reroute_budget = 2;
        let out = simulate_fleet(&m, &arrivals, &cfg);
        assert!(out.crashes >= 2, "both crash events must fire, got {}", out.crashes);
        assert!(out.rerouted > 0, "orphans must reroute to the sibling");
        // Exactly-once: every arrival id lands in exactly one terminal
        // category.
        let mut all: Vec<usize> = out
            .served_ids
            .iter()
            .chain(&out.rejected_ids)
            .chain(&out.expired_ids)
            .chain(&out.lost_ids)
            .copied()
            .collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..arrivals.len()).collect();
        assert_eq!(all, expect, "terminal outcomes must partition the arrivals");
        assert_eq!(out.offered(), arrivals.len());
    }

    #[test]
    fn threaded_router_routes_across_replicas() {
        let reg = registry(50, 1);
        let rc = ServerConfig { workers: 1, queue_capacity: 32, ..Default::default() };
        let cfg = FleetConfig::new(2, rc, DispatchPolicy::RoundRobin);
        let router = Router::start(reg, cfg);
        for i in 0..8 {
            let r = router.infer(probe(60 + i)).expect("infer must succeed");
            assert_eq!(r.model_iteration, 1);
        }
        assert_eq!(router.live_replicas(), 2);
        let (rec, report) = router.shutdown_with_report();
        assert_eq!(report.routed, 8);
        assert_eq!(report.servers.served, 8);
        assert_eq!(rec.len(), 8);
        assert_eq!(report.final_replicas, 2);
    }

    #[test]
    fn threaded_canary_promote_publishes_candidate() {
        let reg = registry(51, 1);
        let rc = ServerConfig { workers: 1, queue_capacity: 64, ..Default::default() };
        let mut cfg = FleetConfig::new(2, rc, DispatchPolicy::LeastLoaded);
        cfg.seed = 17;
        let router = Router::start(Arc::clone(&reg), cfg);
        let mut rng = TensorRng::new(52);
        let candidate = ServingModel::new(hep_small(&mut rng), 777, 52);
        let ccfg = CanaryConfig { fraction: 0.5, regression_tol: 10.0, min_samples: 5 };
        router.begin_canary(candidate, ccfg, FaultPlan::none()).expect("canary must start");
        let mut decision = CanaryDecision::Pending;
        for i in 0..200 {
            router.infer(probe(100 + i)).expect("infer must succeed");
            decision = router.resolve_canary();
            if decision != CanaryDecision::Pending {
                break;
            }
        }
        assert_eq!(decision, CanaryDecision::Promoted);
        assert_eq!(reg.current().iteration, 777, "promotion must publish the candidate");
        let (_, report) = router.shutdown_with_report();
        assert!(report.canary_promoted);
    }
}
