//! The supervised serving worker pool: threads that pull batches from
//! the [`BatchQueue`](crate::queue::BatchQueue), run the active model's
//! inference-only forward path, and scatter per-request results back to
//! waiting clients — under a supervisor that keeps the pool alive when
//! workers panic, hang or straggle.
//!
//! ## Resilience model
//!
//! * **Panics are contained.** Each worker runs under `catch_unwind`; a
//!   panicking worker reports to the supervisor instead of silently
//!   shrinking the pool. Its in-flight batch is recovered from the
//!   shared in-flight table and re-queued at the head of the line (up to
//!   [`SupervisorConfig::max_requeues`] attempts per request, so a
//!   poison request cannot crash-loop the pool forever), and the slot is
//!   respawned with exponential backoff.
//! * **Hangs are detected.** Workers stamp a heartbeat per batch; a
//!   worker silent past [`SupervisorConfig::heartbeat_timeout`] while
//!   requests are waiting gets a replacement spawned beside it (the
//!   stuck thread cannot be killed, but the pool regains capacity).
//! * **Every request gets exactly one terminal outcome.** A reply
//!   (`Ok`), a typed shed ([`ServeError::DeadlineExceeded`] for
//!   requests that expire in the queue, [`ServeError::Shed`] at
//!   admission), or a dropped reply channel, which the client observes
//!   as [`ServeError::WorkerLost`]. When the last worker dies and no
//!   respawn remains, the supervisor closes and drains the queue so no
//!   request is stranded behind a consumer that will never come.
//!
//! Replies travel over rendezvous `std::sync::mpsc::sync_channel(1)`
//! pairs, so a slow client never blocks a worker (the send buffers one
//! result and returns).
//!
//! Fault injection: a [`FaultPlan`] with serving events (worker crashes,
//! slow workers) drives deterministic chaos through the *same* code
//! paths real failures take — an injected crash is a real `panic!` mid-
//! batch, recovered by the real supervisor.

use crate::queue::{BatchPolicy, BatchQueue, SubmitError};
use crate::registry::ModelRegistry;
use scidl_cluster::faults::FaultPlan;
use scidl_core::metrics::LatencyRecorder;
use scidl_nn::InferScratch;
use scidl_tensor::{Shape4, Tensor};
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A single inference request travelling through the queue.
pub struct ServeRequest {
    /// Input tensor with batch dimension 1: shape `(1, c, h, w)`.
    pub input: Tensor,
    /// Absolute deadline after which serving this request is pointless.
    deadline: Option<Instant>,
    /// How many times this request has been re-queued after a worker
    /// died holding it.
    attempts: u32,
    reply: SyncSender<Result<InferResult, ServeError>>,
}

/// The answer a client receives for one request.
#[derive(Clone, Debug)]
pub struct InferResult {
    /// Raw output logits for this request.
    pub logits: Vec<f32>,
    /// Time the request sat in the queue before its batch formed (the
    /// wait since its last (re-)queueing, for retried requests).
    pub queue_wait: Duration,
    /// Wall time of the batched forward pass that served it.
    pub compute: Duration,
    /// Size of the batch this request was served in.
    pub batch_size: usize,
    /// Training iteration of the model snapshot that answered.
    pub model_iteration: u64,
}

/// Why a request could not be served. Every accepted request ends in
/// exactly one terminal outcome: an [`InferResult`] or one of these.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control shed the request: the queue depth crossed the
    /// shed watermark. `retry_after` is the server's backoff hint.
    Shed {
        /// Queue depth observed at rejection.
        depth: usize,
        /// Suggested wait before retrying.
        retry_after: Duration,
    },
    /// The server is shutting down (or lost its last worker); the
    /// request was rejected at admission.
    Closed,
    /// The request's deadline expired while it waited in the queue; it
    /// was shed before compute.
    DeadlineExceeded,
    /// The worker serving this request died and the request exhausted
    /// its re-queue attempts (or the pool was lost); the reply channel
    /// was dropped without an answer.
    WorkerLost,
    /// The input did not have batch dimension 1.
    BadInput(String),
}

impl ServeError {
    /// Whether a retry can possibly succeed. Sheds and lost workers are
    /// transient (the pool recovers, load drains); bad input and
    /// shutdown are not, and an expired deadline means the caller's
    /// latency budget is already spent.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ServeError::Shed { .. } | ServeError::WorkerLost)
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Shed { depth, retry_after } => write!(
                f,
                "request shed: queue depth {depth} crossed the watermark (retry after {retry_after:?})"
            ),
            ServeError::Closed => write!(f, "server closed: request rejected at admission"),
            ServeError::DeadlineExceeded => write!(f, "deadline expired while queued"),
            ServeError::WorkerLost => write!(f, "worker died holding the request"),
            ServeError::BadInput(m) => write!(f, "bad input: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Supervisor tuning: heartbeat cadence, respawn backoff and the
/// re-queue budget for in-flight requests recovered from dead workers.
#[derive(Clone, Copy, Debug)]
pub struct SupervisorConfig {
    /// How often the supervisor wakes to check worker heartbeats.
    pub heartbeat_interval: Duration,
    /// A worker silent this long while requests wait is presumed hung;
    /// a replacement is spawned beside it.
    pub heartbeat_timeout: Duration,
    /// First respawn backoff; doubles per consecutive respawn of a slot.
    pub backoff_base: Duration,
    /// Upper bound on the exponential respawn backoff.
    pub backoff_cap: Duration,
    /// Respawns allowed per worker slot before it is abandoned.
    pub max_respawns: u32,
    /// Times a single request may be re-queued after losing its worker
    /// before it is abandoned (its client sees [`ServeError::WorkerLost`]).
    pub max_requeues: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            heartbeat_interval: Duration::from_millis(10),
            heartbeat_timeout: Duration::from_millis(500),
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(100),
            max_respawns: 8,
            max_requeues: 2,
        }
    }
}

/// Worker-pool configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Number of worker threads pulling batches.
    pub workers: usize,
    /// Bound on the request queue; submissions beyond it are shed.
    pub queue_capacity: usize,
    /// Queue depth at which admission starts shedding; `None` means the
    /// full capacity. Setting it below capacity leaves headroom for
    /// requests re-queued from dead workers.
    pub shed_watermark: Option<usize>,
    /// Batch-formation policy.
    pub policy: BatchPolicy,
    /// Deterministic chaos: serving events of this plan (worker
    /// crashes, slow workers) are injected into the pool.
    pub faults: FaultPlan,
    /// Supervisor tuning.
    pub supervisor: SupervisorConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            queue_capacity: 64,
            shed_watermark: None,
            policy: BatchPolicy::dynamic(8, Duration::from_millis(10)),
            faults: FaultPlan::none(),
            supervisor: SupervisorConfig::default(),
        }
    }
}

/// What the resilience machinery did over a server's lifetime.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerReport {
    /// Requests answered with logits.
    pub served: u64,
    /// Requests shed at admission (watermark / queue full).
    pub shed: u64,
    /// Requests shed in the queue because their deadline expired.
    pub expired: u64,
    /// Worker panics the supervisor contained.
    pub panics: u64,
    /// Worker slots respawned after a panic.
    pub respawns: u64,
    /// Replacement workers spawned beside unresponsive slots.
    pub replacements: u64,
    /// In-flight requests recovered from dead workers and re-queued.
    pub requeued: u64,
    /// Requests abandoned (client saw [`ServeError::WorkerLost`]):
    /// re-queue budget exhausted or the whole pool was lost.
    pub worker_lost: u64,
}

#[derive(Default)]
struct Counters {
    served: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    panics: AtomicU64,
    respawns: AtomicU64,
    replacements: AtomicU64,
    requeued: AtomicU64,
    worker_lost: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServerReport {
        ServerReport {
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            replacements: self.replacements.load(Ordering::Relaxed),
            requeued: self.requeued.load(Ordering::Relaxed),
            worker_lost: self.worker_lost.load(Ordering::Relaxed),
        }
    }
}

/// State shared by clients, workers and the supervisor.
struct Shared {
    queue: BatchQueue<ServeRequest>,
    registry: Arc<ModelRegistry>,
    policy: BatchPolicy,
    faults: FaultPlan,
    /// One flag per `faults.worker_crashes` entry: each injected crash
    /// fires exactly once (a respawned slot must not re-crash on the
    /// same event forever).
    crash_fired: Vec<AtomicBool>,
    /// In-flight batches by worker incarnation: a worker parks its
    /// batch here before compute and takes it back to reply, so the
    /// supervisor can recover the requests from a dead incarnation.
    inflight: Mutex<HashMap<u64, Vec<ServeRequest>>>,
    /// Last sign of life per live incarnation.
    heartbeats: Mutex<HashMap<u64, Instant>>,
    /// Latency account of everything served. Shared (rather than
    /// per-worker, merged at exit) so a panicking worker cannot lose the
    /// samples of batches it already answered.
    recorder: Mutex<LatencyRecorder>,
    counters: Counters,
}

enum WorkerEvent {
    Exited { incarnation: u64 },
    Panicked { slot: usize, incarnation: u64 },
}

/// Handle for submitting requests to a running [`Server`]. Cheap to
/// clone; clones share the same bounded queue *and* the same retry
/// budget, so a fleet of callers cannot multiply retries under overload.
#[derive(Clone)]
pub struct Client {
    shared: Arc<Shared>,
    budget: Arc<RetryBudget>,
}

/// The receiver a [`Client::submit`] hands back: one terminal outcome
/// per request. A `RecvError` on it means the reply channel was dropped
/// — map it to [`ServeError::WorkerLost`], as [`Client::infer`] does.
pub type ReplyReceiver = Receiver<Result<InferResult, ServeError>>;

/// Bounded-retry policy for [`Client::infer_with_retry`]: exponential
/// backoff with deterministic jitter, capped attempts, and an optional
/// overall deadline that is also attached to each submitted request.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Must be ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base: Duration,
    /// Upper bound on a single backoff.
    pub cap: Duration,
    /// Overall latency budget across all attempts; each submission
    /// carries the remaining budget as its queue deadline.
    pub deadline: Option<Duration>,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(200),
            deadline: None,
            jitter_seed: 0x5eed,
        }
    }
}

/// A token-bucket retry budget shared by all clones of a [`Client`]:
/// every success deposits a fraction of a retry token, every retry
/// withdraws a whole one. Under a total outage retries stop after the
/// bucket drains instead of amplifying the load (the classic retry-storm
/// failure mode).
pub struct RetryBudget {
    /// Token balance ×100 (so a 0.1 deposit ratio stays integral).
    centitokens: AtomicI64,
    max_centitokens: i64,
    deposit: i64,
}

impl RetryBudget {
    /// A budget allowing roughly `ratio` retries per success, with
    /// `burst` retries available up front (and as the balance cap).
    pub fn new(ratio: f64, burst: u32) -> Self {
        assert!((0.0..=1.0).contains(&ratio), "retry ratio must be in [0,1]");
        assert!(burst >= 1);
        let max = burst as i64 * 100;
        Self {
            centitokens: AtomicI64::new(max),
            max_centitokens: max,
            deposit: (ratio * 100.0).round() as i64,
        }
    }

    fn on_success(&self) {
        let mut cur = self.centitokens.load(Ordering::Relaxed);
        loop {
            let next = (cur + self.deposit).min(self.max_centitokens);
            match self.centitokens.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    fn try_withdraw(&self) -> bool {
        let mut cur = self.centitokens.load(Ordering::Relaxed);
        loop {
            if cur < 100 {
                return false;
            }
            match self.centitokens.compare_exchange_weak(
                cur,
                cur - 100,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Whole retry tokens currently available.
    pub fn available(&self) -> u32 {
        (self.centitokens.load(Ordering::Relaxed).max(0) / 100) as u32
    }
}

impl Default for RetryBudget {
    fn default() -> Self {
        Self::new(0.1, 10)
    }
}

impl Client {
    /// Submits `input` (shape `(1, c, h, w)`) without waiting for the
    /// answer and with no deadline. Sheds with [`ServeError::Shed`] when
    /// the queue is over its watermark.
    pub fn submit(&self, input: Tensor) -> Result<ReplyReceiver, ServeError> {
        self.submit_with_deadline(input, None)
    }

    /// Submits `input` with a relative `deadline`: if the request is
    /// still queued when it lapses, it is shed before compute and the
    /// receiver yields [`ServeError::DeadlineExceeded`].
    pub fn submit_with_deadline(
        &self,
        input: Tensor,
        deadline: Option<Duration>,
    ) -> Result<ReplyReceiver, ServeError> {
        if input.shape().n != 1 {
            return Err(ServeError::BadInput(format!(
                "expected batch dimension 1, got shape {:?}",
                input.shape()
            )));
        }
        let deadline = deadline.map(|d| Instant::now() + d);
        let (reply, rx) = sync_channel(1);
        let req = ServeRequest { input, deadline, attempts: 0, reply };
        match self.shared.queue.submit_with_deadline(req, deadline) {
            Ok(()) => Ok(rx),
            Err(SubmitError::Full { depth, .. }) => {
                self.shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                let tr = scidl_trace::TraceHandle::current();
                if tr.enabled() {
                    tr.instant(u64::MAX, scidl_trace::EventKind::Shed {
                        worker: u64::MAX,
                        count: 1,
                        depth: depth as u64,
                        reason: "watermark",
                    });
                }
                Err(ServeError::Shed { depth, retry_after: self.retry_after_hint(depth) })
            }
            Err(SubmitError::Closed(_)) => Err(ServeError::Closed),
        }
    }

    /// Submits `input` and blocks until its terminal outcome arrives. A
    /// dropped reply channel (worker death with the re-queue budget
    /// exhausted, or pool loss) surfaces as [`ServeError::WorkerLost`].
    pub fn infer(&self, input: Tensor) -> Result<InferResult, ServeError> {
        self.infer_with_deadline(input, None)
    }

    /// [`Client::infer`] with a relative queueing deadline.
    pub fn infer_with_deadline(
        &self,
        input: Tensor,
        deadline: Option<Duration>,
    ) -> Result<InferResult, ServeError> {
        let rx = self.submit_with_deadline(input, deadline)?;
        rx.recv().map_err(|_| ServeError::WorkerLost)?
    }

    /// Blocking inference with bounded retry: exponential backoff with
    /// deterministic jitter on retryable errors (sheds, lost workers),
    /// stopping at `policy.max_attempts`, the overall deadline, or an
    /// empty [`RetryBudget`] — whichever bites first. Returns the last
    /// error when retries are exhausted.
    pub fn infer_with_retry(
        &self,
        input: Tensor,
        policy: &RetryPolicy,
    ) -> Result<InferResult, ServeError> {
        assert!(policy.max_attempts >= 1);
        let overall = policy.deadline.map(|d| Instant::now() + d);
        let mut jitter = policy.jitter_seed | 1;
        let tr = scidl_trace::TraceHandle::current();
        let mut attempt = 0u32;
        loop {
            let remaining = match overall {
                None => policy.deadline,
                Some(t) => {
                    let now = Instant::now();
                    if now >= t {
                        return Err(ServeError::DeadlineExceeded);
                    }
                    Some(t - now)
                }
            };
            let err = match self.infer_with_deadline(input.clone(), remaining) {
                Ok(r) => {
                    self.budget.on_success();
                    return Ok(r);
                }
                Err(e) => e,
            };
            attempt += 1;
            if !err.is_retryable() || attempt >= policy.max_attempts {
                return Err(err);
            }
            if !self.budget.try_withdraw() {
                // Budget spent: stop amplifying an outage.
                return Err(err);
            }
            // Exponential backoff with deterministic jitter in
            // [backoff/2, backoff), floored by the server's retry-after
            // hint when one was given.
            let exp = policy.base.saturating_mul(1 << (attempt - 1).min(16)).min(policy.cap);
            jitter = xorshift64(jitter);
            let jittered = exp / 2 + Duration::from_nanos(jitter % (exp.as_nanos().max(2) as u64 / 2));
            let backoff = match &err {
                ServeError::Shed { retry_after, .. } => jittered.max(*retry_after).min(policy.cap),
                _ => jittered,
            };
            if let Some(t) = overall {
                if Instant::now() + backoff >= t {
                    return Err(err);
                }
            }
            if tr.enabled() {
                tr.instant(u64::MAX, scidl_trace::EventKind::Retry {
                    attempt: attempt as u64,
                    backoff_s: backoff.as_secs_f64(),
                });
            }
            std::thread::sleep(backoff);
        }
    }

    /// The shared retry budget (for observability and tests).
    pub fn retry_budget(&self) -> &RetryBudget {
        &self.budget
    }

    /// Heuristic retry-after: the time the current backlog needs to
    /// drain through the batch former, assuming full batches at the
    /// configured deadline cadence.
    fn retry_after_hint(&self, depth: usize) -> Duration {
        let p = &self.shared.policy;
        let batches = depth.div_ceil(p.max_batch).max(1) as u32;
        (p.max_delay.max(Duration::from_millis(1))).saturating_mul(batches)
    }
}

fn xorshift64(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// A running supervised worker pool bound to a [`ModelRegistry`].
pub struct Server {
    shared: Arc<Shared>,
    budget: Arc<RetryBudget>,
    supervisor: Option<JoinHandle<LatencyRecorder>>,
}

impl Server {
    /// Spawns `cfg.workers` supervised threads serving the registry's
    /// active model. Hot-swapping the registry redirects the *next*
    /// batch of every worker; in-flight batches finish on the snapshot
    /// they started with.
    pub fn start(registry: Arc<ModelRegistry>, cfg: ServerConfig) -> Self {
        assert!(cfg.workers >= 1, "need at least one worker");
        install_quiet_panic_hook();
        let watermark = cfg.shed_watermark.unwrap_or(cfg.queue_capacity).min(cfg.queue_capacity);
        let crash_fired =
            cfg.faults.worker_crashes.iter().map(|_| AtomicBool::new(false)).collect();
        let shared = Arc::new(Shared {
            queue: BatchQueue::with_watermark(cfg.queue_capacity, watermark),
            registry,
            policy: cfg.policy,
            faults: cfg.faults.clone(),
            crash_fired,
            inflight: Mutex::new(HashMap::new()),
            heartbeats: Mutex::new(HashMap::new()),
            recorder: Mutex::new(LatencyRecorder::new()),
            counters: Counters::default(),
        });
        let (tx, rx) = std::sync::mpsc::channel();
        let mut live = HashMap::new();
        for slot in 0..cfg.workers {
            let incarnation = slot as u64;
            let handle = spawn_worker(&shared, slot, incarnation, tx.clone());
            live.insert(incarnation, (slot, handle));
        }
        let sup_shared = Arc::clone(&shared);
        let sup_cfg = cfg.supervisor;
        let next_incarnation = cfg.workers as u64;
        let supervisor = std::thread::Builder::new()
            .name("scidl-serve-supervisor".into())
            .spawn(move || supervisor_loop(sup_shared, sup_cfg, rx, tx, live, next_incarnation))
            .expect("spawn supervisor");
        Self { shared, budget: Arc::new(RetryBudget::default()), supervisor: Some(supervisor) }
    }

    /// A handle for submitting requests. All handles from one server
    /// share a retry budget.
    pub fn client(&self) -> Client {
        Client { shared: Arc::clone(&self.shared), budget: Arc::clone(&self.budget) }
    }

    /// Number of requests currently queued (not yet batched).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Live snapshot of the resilience counters.
    pub fn report(&self) -> ServerReport {
        self.shared.counters.snapshot()
    }

    /// Stops admitting requests, drains the queue, joins the pool and
    /// returns the merged latency account of everything served.
    pub fn shutdown(self) -> LatencyRecorder {
        self.shutdown_with_report().0
    }

    /// [`Server::shutdown`], also returning the final resilience report.
    pub fn shutdown_with_report(mut self) -> (LatencyRecorder, ServerReport) {
        self.shared.queue.close();
        let recorder = self
            .supervisor
            .take()
            .expect("shutdown called once")
            .join()
            .expect("supervisor panicked");
        (recorder, self.shared.counters.snapshot())
    }
}

// ---------------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------------

fn supervisor_loop(
    shared: Arc<Shared>,
    cfg: SupervisorConfig,
    rx: Receiver<WorkerEvent>,
    tx: Sender<WorkerEvent>,
    mut live: HashMap<u64, (usize, JoinHandle<()>)>,
    mut next_incarnation: u64,
) -> LatencyRecorder {
    let tr = scidl_trace::TraceHandle::current();
    let mut respawns_per_slot: HashMap<usize, u32> = HashMap::new();
    let mut suspected: HashSet<u64> = HashSet::new();
    loop {
        match rx.recv_timeout(cfg.heartbeat_interval) {
            Ok(WorkerEvent::Exited { incarnation }) => {
                if let Some((_, handle)) = live.remove(&incarnation) {
                    let _ = handle.join();
                }
                shared.heartbeats.lock().unwrap().remove(&incarnation);
                if live.is_empty() && shared.queue.is_closed() {
                    break;
                }
            }
            Ok(WorkerEvent::Panicked { slot, incarnation }) => {
                shared.counters.panics.fetch_add(1, Ordering::Relaxed);
                if let Some((_, handle)) = live.remove(&incarnation) {
                    let _ = handle.join();
                }
                shared.heartbeats.lock().unwrap().remove(&incarnation);
                suspected.remove(&incarnation);
                // Recover the dead incarnation's in-flight batch: each
                // request either goes back to the head of the queue or,
                // once its re-queue budget is spent, is abandoned (its
                // client observes WorkerLost via the dropped reply).
                let body = shared.inflight.lock().unwrap().remove(&incarnation).unwrap_or_default();
                let mut requeue = Vec::new();
                for mut req in body {
                    req.attempts += 1;
                    if req.attempts > cfg.max_requeues {
                        shared.counters.worker_lost.fetch_add(1, Ordering::Relaxed);
                        // Dropping `req` drops its reply SyncSender.
                    } else {
                        shared.counters.requeued.fetch_add(1, Ordering::Relaxed);
                        let deadline = req.deadline;
                        requeue.push((req, deadline));
                    }
                }
                let recovered = requeue.len() as u64;
                shared.queue.requeue_front(requeue);

                let n = respawns_per_slot.entry(slot).or_insert(0);
                if *n < cfg.max_respawns {
                    let backoff = cfg
                        .backoff_base
                        .saturating_mul(1u32 << (*n).min(16))
                        .min(cfg.backoff_cap);
                    *n += 1;
                    std::thread::sleep(backoff);
                    let incarnation = next_incarnation;
                    next_incarnation += 1;
                    let handle = spawn_worker(&shared, slot, incarnation, tx.clone());
                    live.insert(incarnation, (slot, handle));
                    shared.counters.respawns.fetch_add(1, Ordering::Relaxed);
                    if tr.enabled() {
                        tr.instant(slot as u64, scidl_trace::EventKind::WorkerRespawn {
                            worker: slot as u64,
                            incarnation,
                            backoff_s: backoff.as_secs_f64(),
                            requeued: recovered,
                        });
                    }
                } else if live.is_empty() {
                    // The whole pool is gone and no respawn remains:
                    // close the front door and fail everything still
                    // queued rather than strand it.
                    shared.queue.close();
                    let stranded = shared.queue.drain_all();
                    shared
                        .counters
                        .worker_lost
                        .fetch_add(stranded.len() as u64, Ordering::Relaxed);
                    drop(stranded);
                    break;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                // Heartbeat sweep: a worker silent past the timeout
                // while work is waiting is presumed hung — spawn one
                // replacement beside it (threads cannot be killed; the
                // pool regains capacity and the straggler is absorbed
                // when it eventually finishes).
                if shared.queue.is_empty() {
                    continue;
                }
                let now = Instant::now();
                let stale: Vec<(u64, usize)> = {
                    let hb = shared.heartbeats.lock().unwrap();
                    live.iter()
                        .filter(|(inc, _)| {
                            hb.get(inc).is_some_and(|t| now.duration_since(*t) > cfg.heartbeat_timeout)
                        })
                        .map(|(inc, (slot, _))| (*inc, *slot))
                        .collect()
                };
                for (inc, slot) in stale {
                    if !suspected.insert(inc) {
                        continue; // already replaced once
                    }
                    let incarnation = next_incarnation;
                    next_incarnation += 1;
                    let handle = spawn_worker(&shared, slot, incarnation, tx.clone());
                    live.insert(incarnation, (slot, handle));
                    shared.counters.replacements.fetch_add(1, Ordering::Relaxed);
                    if tr.enabled() {
                        tr.instant(slot as u64, scidl_trace::EventKind::WorkerRespawn {
                            worker: slot as u64,
                            incarnation,
                            backoff_s: 0.0,
                            requeued: 0,
                        });
                    }
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    std::mem::take(&mut *shared.recorder.lock().unwrap())
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn spawn_worker(
    shared: &Arc<Shared>,
    slot: usize,
    incarnation: u64,
    tx: Sender<WorkerEvent>,
) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("scidl-serve-worker-{slot}-{incarnation}"))
        .spawn(move || {
            QUIET_PANIC.with(|q| q.set(true));
            shared.heartbeats.lock().unwrap().insert(incarnation, Instant::now());
            let result =
                catch_unwind(AssertUnwindSafe(|| worker_loop(&shared, slot, incarnation)));
            match result {
                Ok(()) => {
                    let _ = tx.send(WorkerEvent::Exited { incarnation });
                }
                Err(_) => {
                    let _ = tx.send(WorkerEvent::Panicked { slot, incarnation });
                }
            }
        })
        .expect("spawn worker")
}

fn worker_loop(shared: &Shared, slot: usize, incarnation: u64) {
    let mut scratch = InferScratch::new();
    // Attach to whichever trace run the embedding process started; each
    // worker slot gets its own lane, each dispatched batch one span + row.
    let tr = scidl_trace::TraceHandle::current();
    let mut batch_idx = 0u64;
    while let Some(popped) = shared.queue.pop_expiring(&shared.policy) {
        shared.heartbeats.lock().unwrap().insert(incarnation, Instant::now());
        if !popped.expired.is_empty() {
            // Deadline shed: answer before any compute is spent.
            let n = popped.expired.len() as u64;
            shared.counters.expired.fetch_add(n, Ordering::Relaxed);
            if tr.enabled() {
                tr.instant(slot as u64, scidl_trace::EventKind::Shed {
                    worker: slot as u64,
                    count: n,
                    depth: shared.queue.len() as u64,
                    reason: "deadline",
                });
            }
            for req in popped.expired {
                let _ = req.reply.send(Err(ServeError::DeadlineExceeded));
            }
        }
        if popped.batch.is_empty() {
            continue;
        }
        let model = shared.registry.current();
        let (reqs, waits): (Vec<ServeRequest>, Vec<Duration>) = popped.batch.into_iter().unzip();
        let b = reqs.len();
        let item_shape = reqs[0].input.shape();
        let mut x = Tensor::zeros(Shape4::new(b, item_shape.c, item_shape.h, item_shape.w));
        for (i, req) in reqs.iter().enumerate() {
            assert_eq!(
                req.input.shape(),
                item_shape,
                "all requests in a batch must share the model's input shape"
            );
            x.item_mut(i).copy_from_slice(req.input.item(0));
        }
        // Park the batch where the supervisor can find it, then run the
        // injected-crash check: a chaos crash is a real panic mid-batch,
        // recovered through the same path a genuine bug would take.
        shared.inflight.lock().unwrap().insert(incarnation, reqs);
        for (ci, c) in shared.faults.worker_crashes.iter().enumerate() {
            if c.worker == slot
                && batch_idx >= c.after_batches
                && !shared.crash_fired[ci].swap(true, Ordering::SeqCst)
            {
                panic!("injected worker crash: slot {slot} batch {batch_idx}");
            }
        }
        let span_t = tr.now();
        let t0 = Instant::now();
        let y = model.network.infer_with(&x, &mut scratch);
        // Chaos straggler: stretch this batch's wall time.
        let slow = shared.faults.slow_worker_factor(slot, batch_idx);
        if slow > 1.0 {
            std::thread::sleep(t0.elapsed().mul_f64(slow - 1.0));
        }
        let compute = t0.elapsed();
        let reqs = shared
            .inflight
            .lock()
            .unwrap()
            .remove(&incarnation)
            .expect("worker's own in-flight batch present");
        if tr.enabled() {
            // The head request waited longest; report its wait as the
            // batch's queue component.
            let queue_s = waits.iter().map(|w| w.as_secs_f64()).fold(0.0f64, f64::max);
            let wu = slot as u64;
            tr.span(wu, span_t, scidl_trace::EventKind::BatchDispatch {
                worker: wu,
                batch: b as u64,
                queue_s,
                compute_s: compute.as_secs_f64(),
            });
            tr.row(scidl_trace::IterRow {
                run: 0,
                kind: "serve",
                track: wu,
                iter: batch_idx,
                start_s: span_t,
                compute_s: compute.as_secs_f64(),
                comm_s: 0.0,
                ps_s: 0.0,
                queue_s,
                staleness: 0,
                loss: 0.0,
                batch: b as u64,
            });
        }
        batch_idx += 1;
        shared.counters.served.fetch_add(b as u64, Ordering::Relaxed);
        {
            let mut rec = shared.recorder.lock().unwrap();
            for w in &waits {
                rec.push(w.as_secs_f64(), compute.as_secs_f64());
            }
        }
        for (i, (req, queue_wait)) in reqs.into_iter().zip(waits).enumerate() {
            // A client that dropped its receiver just loses the answer.
            let _ = req.reply.send(Ok(InferResult {
                logits: y.item(i).to_vec(),
                queue_wait,
                compute,
                batch_size: b,
                model_iteration: model.iteration,
            }));
        }
    }
}

// ---------------------------------------------------------------------------
// Quiet panic hook for supervised workers
// ---------------------------------------------------------------------------

thread_local! {
    static QUIET_PANIC: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Supervised workers panic by design under chaos plans; silencing the
/// default hook's backtrace spew for *worker threads only* keeps test
/// and benchmark output readable. Every other thread's panics print as
/// usual.
fn install_quiet_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET_PANIC.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ModelRegistry, ServingModel};
    use scidl_nn::arch::hep_small;
    use scidl_tensor::TensorRng;

    fn registry(seed: u64, iteration: u64) -> Arc<ModelRegistry> {
        let mut rng = TensorRng::new(seed);
        Arc::new(ModelRegistry::new(ServingModel::new(hep_small(&mut rng), iteration, seed)))
    }

    fn probe(seed: u64) -> Tensor {
        let mut rng = TensorRng::new(seed);
        rng.uniform_tensor(Shape4::new(1, 3, 32, 32), -1.0, 1.0)
    }

    #[test]
    fn served_logits_match_direct_inference() {
        let reg = registry(31, 5);
        let server = Server::start(Arc::clone(&reg), ServerConfig::default());
        let client = server.client();
        let x = probe(1);
        let want = reg.current().network.infer(&x);
        let got = client.infer(x).unwrap();
        assert_eq!(got.logits, want.item(0), "served logits must be bit-identical");
        assert_eq!(got.model_iteration, 5);
        let rec = server.shutdown();
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn batched_requests_each_get_their_own_logits() {
        let reg = registry(32, 0);
        let cfg = ServerConfig {
            policy: BatchPolicy::dynamic(4, Duration::from_millis(200)),
            ..ServerConfig::default()
        };
        let server = Server::start(Arc::clone(&reg), cfg);
        let client = server.client();
        let inputs: Vec<Tensor> = (0..4).map(|i| probe(100 + i)).collect();
        let rxs: Vec<_> = inputs.iter().map(|x| client.submit(x.clone()).unwrap()).collect();
        for (x, rx) in inputs.iter().zip(rxs) {
            let got = rx.recv().unwrap().unwrap();
            let want = reg.current().network.infer(x);
            assert_eq!(got.logits, want.item(0));
        }
        let rec = server.shutdown();
        assert_eq!(rec.len(), 4);
    }

    #[test]
    fn rejects_bad_batch_dimension() {
        let reg = registry(33, 0);
        let server = Server::start(reg, ServerConfig::default());
        let client = server.client();
        let mut rng = TensorRng::new(2);
        let x = rng.uniform_tensor(Shape4::new(2, 3, 32, 32), -1.0, 1.0);
        assert!(matches!(client.infer(x), Err(ServeError::BadInput(_))));
        server.shutdown();
    }

    #[test]
    fn hot_swap_redirects_subsequent_requests() {
        let reg = registry(34, 1);
        let server = Server::start(Arc::clone(&reg), ServerConfig::default());
        let client = server.client();
        assert_eq!(client.infer(probe(3)).unwrap().model_iteration, 1);
        let mut rng = TensorRng::new(35);
        reg.swap(ServingModel::new(hep_small(&mut rng), 2, 35));
        assert_eq!(client.infer(probe(3)).unwrap().model_iteration, 2);
        server.shutdown();
    }

    #[test]
    fn shutdown_merges_latency_accounts_across_workers() {
        let reg = registry(36, 0);
        let cfg = ServerConfig { workers: 2, policy: BatchPolicy::batch1(), ..Default::default() };
        let server = Server::start(reg, cfg);
        let client = server.client();
        let rxs: Vec<_> = (0..6).map(|i| client.submit(probe(200 + i)).unwrap()).collect();
        for rx in rxs {
            rx.recv().unwrap().unwrap();
        }
        let (rec, report) = server.shutdown_with_report();
        assert_eq!(rec.len(), 6);
        assert_eq!(report.served, 6);
        assert_eq!(report.panics, 0);
        let total = rec.total_summary().unwrap();
        assert!(total.min >= 0.0 && total.count == 6);
    }

    #[test]
    fn injected_crash_is_respawned_and_requests_survive() {
        let reg = registry(40, 0);
        let cfg = ServerConfig {
            workers: 1,
            policy: BatchPolicy::batch1(),
            faults: FaultPlan::none().with_worker_crash(0, 1, 0.0),
            ..Default::default()
        };
        let server = Server::start(reg, cfg);
        let client = server.client();
        // Sequential round-trips: batch 0 serves normally, batch 1 kills
        // the worker mid-request; the supervisor re-queues the in-flight
        // request and respawns the slot, so the client still gets logits.
        for i in 0..4 {
            let r = client.infer(probe(300 + i)).unwrap();
            assert_eq!(r.logits.len(), scidl_nn::arch::HEP_CLASSES);
        }
        let (rec, report) = server.shutdown_with_report();
        assert_eq!(rec.len(), 4, "all four requests served despite the crash");
        assert_eq!(report.panics, 1);
        assert_eq!(report.respawns, 1);
        assert_eq!(report.requeued, 1);
        assert_eq!(report.worker_lost, 0);
    }

    #[test]
    fn pool_exhaustion_fails_requests_instead_of_hanging() {
        let reg = registry(41, 0);
        let cfg = ServerConfig {
            workers: 1,
            policy: BatchPolicy::batch1(),
            // Crash on every batch; one respawn allowed, no re-queues:
            // after two crashes the pool is gone for good.
            faults: FaultPlan::none().with_worker_crash(0, 0, 0.0).with_worker_crash(0, 0, 0.0),
            supervisor: SupervisorConfig {
                max_respawns: 1,
                max_requeues: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        let server = Server::start(reg, cfg);
        let client = server.client();
        let mut outcomes = Vec::new();
        for i in 0..4 {
            outcomes.push(client.infer(probe(400 + i)));
            std::thread::sleep(Duration::from_millis(5));
        }
        // Every request terminated (this test completing proves no
        // hang); with zero re-queues the crashed ones see WorkerLost and
        // post-exhaustion submissions are rejected at admission.
        assert!(outcomes.iter().all(|o| matches!(
            o,
            Err(ServeError::WorkerLost) | Err(ServeError::Closed) | Ok(_)
        )));
        assert!(
            outcomes.iter().any(|o| matches!(o, Err(ServeError::WorkerLost))),
            "{outcomes:?}"
        );
        let (_, report) = server.shutdown_with_report();
        assert_eq!(report.panics, 2);
        assert!(report.worker_lost >= 1);
    }

    #[test]
    fn deadline_expires_in_queue_as_typed_shed() {
        let reg = registry(42, 0);
        // One worker kept busy by a big first request batch window: use
        // a long batch-former delay so the queued request's deadline
        // fires first.
        let cfg = ServerConfig {
            policy: BatchPolicy::dynamic(32, Duration::from_millis(250)),
            ..Default::default()
        };
        let server = Server::start(reg, cfg);
        let client = server.client();
        let err = client
            .infer_with_deadline(probe(7), Some(Duration::from_millis(10)))
            .unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded);
        let (rec, report) = server.shutdown_with_report();
        assert_eq!(rec.len(), 0);
        assert_eq!(report.expired, 1);
        assert_eq!(report.served, 0);
    }

    #[test]
    fn watermark_sheds_with_retry_hint() {
        let reg = registry(43, 0);
        let cfg = ServerConfig {
            workers: 1,
            queue_capacity: 64,
            shed_watermark: Some(2),
            // Huge batch window: nothing dispatches while we overfill.
            policy: BatchPolicy::dynamic(64, Duration::from_secs(30)),
            ..Default::default()
        };
        let server = Server::start(reg, cfg);
        let client = server.client();
        let _a = client.submit(probe(1)).unwrap();
        let _b = client.submit(probe(2)).unwrap();
        match client.submit(probe(3)) {
            Err(ServeError::Shed { depth, retry_after }) => {
                assert_eq!(depth, 2);
                assert!(retry_after > Duration::ZERO);
            }
            other => panic!("expected Shed, got {other:?}"),
        }
        assert_eq!(server.report().shed, 1);
        server.shutdown();
    }

    #[test]
    fn retry_recovers_from_transient_shed() {
        let reg = registry(44, 0);
        let cfg = ServerConfig {
            workers: 1,
            queue_capacity: 4,
            shed_watermark: Some(1),
            policy: BatchPolicy::batch1(),
            ..Default::default()
        };
        let server = Server::start(reg, cfg);
        let client = server.client();
        // Fill the single watermark slot, then retry around it: the
        // worker drains the queue within a few milliseconds, so a
        // retried submission lands.
        let rx = client.submit(probe(1)).unwrap();
        let policy = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(2),
            ..Default::default()
        };
        let got = client.infer_with_retry(probe(2), &policy).unwrap();
        assert_eq!(got.logits.len(), scidl_nn::arch::HEP_CLASSES);
        rx.recv().unwrap().unwrap();
        server.shutdown();
    }

    #[test]
    fn retry_budget_bounds_amplification() {
        let budget = RetryBudget::new(0.1, 2);
        assert_eq!(budget.available(), 2);
        assert!(budget.try_withdraw());
        assert!(budget.try_withdraw());
        assert!(!budget.try_withdraw(), "burst spent");
        // 10 successes buy one retry at ratio 0.1.
        for _ in 0..10 {
            budget.on_success();
        }
        assert_eq!(budget.available(), 1);
        assert!(budget.try_withdraw());
        assert!(!budget.try_withdraw());
    }

    #[test]
    fn retry_budget_is_shared_across_client_clones() {
        // Regression pin: every clone of a Client (and every client()
        // call on the same server) must share ONE retry budget. If a
        // clone got its own bucket, N clones could retry N times the
        // intended amplification during an outage — the retry storm the
        // budget exists to prevent.
        let reg = registry(46, 0);
        let server = Server::start(reg, ServerConfig::default());
        let a = server.client();
        let b = a.clone();
        let c = server.client();
        assert!(
            std::ptr::eq(a.retry_budget(), b.retry_budget()),
            "a clone must share its parent's budget"
        );
        assert!(
            std::ptr::eq(a.retry_budget(), c.retry_budget()),
            "every client() handle must share the server-wide budget"
        );
        let burst = a.retry_budget().available();
        assert!(burst >= 1);
        // Draining through one clone is visible through every other:
        // the combined fleet of clones cannot exceed the shared burst.
        let mut drained = 0u32;
        while b.retry_budget().try_withdraw() {
            drained += 1;
        }
        assert_eq!(drained, burst);
        assert_eq!(a.retry_budget().available(), 0);
        assert_eq!(c.retry_budget().available(), 0);
        assert!(!a.retry_budget().try_withdraw(), "no clone may overdraw");
        // Successes deposit back into the same shared bucket (default
        // ratio 0.1: ten successes buy one retry).
        for _ in 0..10 {
            c.retry_budget().on_success();
        }
        assert_eq!(a.retry_budget().available(), 1);
        server.shutdown();
    }

    #[test]
    fn slow_worker_fault_stretches_compute() {
        let reg = registry(45, 0);
        let cfg = ServerConfig {
            workers: 1,
            policy: BatchPolicy::batch1(),
            faults: FaultPlan::none().with_slow_worker(0, 0, 1, 4.0),
            ..Default::default()
        };
        let server = Server::start(reg, cfg);
        let client = server.client();
        let slow = client.infer(probe(1)).unwrap();
        let fast = client.infer(probe(2)).unwrap();
        assert!(
            slow.compute > fast.compute * 2,
            "straggler batch must be visibly slower: {:?} vs {:?}",
            slow.compute,
            fast.compute
        );
        server.shutdown();
    }
}
