//! The serving worker pool: threads that pull batches from the
//! [`BatchQueue`](crate::queue::BatchQueue), run the active model's
//! inference-only forward path, and scatter per-request results back to
//! waiting clients.
//!
//! Each worker owns one [`InferScratch`] (reused across batches, so the
//! im2col buffer is allocated once) and one
//! [`LatencyRecorder`] capturing the queue-wait / compute split of every
//! request it served; `shutdown` merges the per-worker recorders into the
//! run's latency account. Replies travel over rendezvous
//! `std::sync::mpsc::sync_channel(1)` pairs, so a slow client never
//! blocks a worker (the send buffers one result and returns).

use crate::queue::{BatchPolicy, BatchQueue, QueueFull};
use crate::registry::ModelRegistry;
use scidl_core::metrics::LatencyRecorder;
use scidl_nn::InferScratch;
use scidl_tensor::{Shape4, Tensor};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A single inference request travelling through the queue.
pub struct ServeRequest {
    /// Input tensor with batch dimension 1: shape `(1, c, h, w)`.
    pub input: Tensor,
    reply: SyncSender<InferResult>,
}

/// The answer a client receives for one request.
#[derive(Clone, Debug)]
pub struct InferResult {
    /// Raw output logits for this request.
    pub logits: Vec<f32>,
    /// Time the request sat in the queue before its batch formed.
    pub queue_wait: Duration,
    /// Wall time of the batched forward pass that served it.
    pub compute: Duration,
    /// Size of the batch this request was served in.
    pub batch_size: usize,
    /// Training iteration of the model snapshot that answered.
    pub model_iteration: u64,
}

/// Why a request could not be served.
#[derive(Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded queue was full (or the server is shutting down); the
    /// request was shed at admission.
    Rejected,
    /// The worker dropped the reply channel without answering (only
    /// possible during shutdown with in-flight requests).
    Disconnected,
    /// The input did not have batch dimension 1.
    BadInput(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected => write!(f, "request rejected: queue at capacity or closed"),
            ServeError::Disconnected => write!(f, "server dropped the request during shutdown"),
            ServeError::BadInput(m) => write!(f, "bad input: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Worker-pool configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Number of worker threads pulling batches.
    pub workers: usize,
    /// Bound on the request queue; submissions beyond it are shed.
    pub queue_capacity: usize,
    /// Batch-formation policy.
    pub policy: BatchPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self { workers: 1, queue_capacity: 64, policy: BatchPolicy::dynamic(8, Duration::from_millis(10)) }
    }
}

/// Handle for submitting requests to a running [`Server`]. Cheap to
/// clone; clones share the same bounded queue.
#[derive(Clone)]
pub struct Client {
    queue: Arc<BatchQueue<ServeRequest>>,
}

impl Client {
    /// Submits `input` (shape `(1, c, h, w)`) without waiting for the
    /// answer; the result arrives on the returned receiver. Sheds the
    /// request with [`ServeError::Rejected`] when the queue is full.
    pub fn submit(&self, input: Tensor) -> Result<Receiver<InferResult>, ServeError> {
        if input.shape().n != 1 {
            return Err(ServeError::BadInput(format!(
                "expected batch dimension 1, got shape {:?}",
                input.shape()
            )));
        }
        let (reply, rx) = sync_channel(1);
        match self.queue.submit(ServeRequest { input, reply }) {
            Ok(()) => Ok(rx),
            Err(QueueFull(_)) => Err(ServeError::Rejected),
        }
    }

    /// Submits `input` and blocks until the result arrives.
    pub fn infer(&self, input: Tensor) -> Result<InferResult, ServeError> {
        self.submit(input)?.recv().map_err(|_| ServeError::Disconnected)
    }
}

/// A running worker pool bound to a [`ModelRegistry`].
pub struct Server {
    queue: Arc<BatchQueue<ServeRequest>>,
    workers: Vec<JoinHandle<LatencyRecorder>>,
}

impl Server {
    /// Spawns `cfg.workers` threads serving the registry's active model.
    /// Hot-swapping the registry redirects the *next* batch of every
    /// worker; in-flight batches finish on the snapshot they started with.
    pub fn start(registry: Arc<ModelRegistry>, cfg: ServerConfig) -> Self {
        assert!(cfg.workers >= 1, "need at least one worker");
        let queue = Arc::new(BatchQueue::new(cfg.queue_capacity));
        let workers = (0..cfg.workers)
            .map(|worker| {
                let queue = Arc::clone(&queue);
                let registry = Arc::clone(&registry);
                let policy = cfg.policy;
                std::thread::spawn(move || worker_loop(worker, &queue, &registry, &policy))
            })
            .collect();
        Self { queue, workers }
    }

    /// A handle for submitting requests.
    pub fn client(&self) -> Client {
        Client { queue: Arc::clone(&self.queue) }
    }

    /// Number of requests currently queued (not yet batched).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Stops admitting requests, drains the queue, joins the workers and
    /// returns the merged latency account of everything served.
    pub fn shutdown(self) -> LatencyRecorder {
        self.queue.close();
        let mut merged = LatencyRecorder::new();
        for w in self.workers {
            merged.merge(&w.join().expect("serving worker panicked"));
        }
        merged
    }
}

fn worker_loop(
    worker: usize,
    queue: &BatchQueue<ServeRequest>,
    registry: &ModelRegistry,
    policy: &BatchPolicy,
) -> LatencyRecorder {
    let mut scratch = InferScratch::new();
    let mut recorder = LatencyRecorder::new();
    // Attach to whichever trace run the embedding process started; each
    // worker gets its own lane, each dispatched batch one span + row.
    let tr = scidl_trace::TraceHandle::current();
    let mut batch_idx = 0u64;
    while let Some(batch) = queue.pop_batch(policy) {
        let model = registry.current();
        let b = batch.len();
        let item_shape = batch[0].0.input.shape();
        let mut x = Tensor::zeros(Shape4::new(b, item_shape.c, item_shape.h, item_shape.w));
        for (i, (req, _)) in batch.iter().enumerate() {
            assert_eq!(
                req.input.shape(),
                item_shape,
                "all requests in a batch must share the model's input shape"
            );
            x.item_mut(i).copy_from_slice(req.input.item(0));
        }
        let span_t = tr.now();
        let t0 = Instant::now();
        let y = model.network.infer_with(&x, &mut scratch);
        let compute = t0.elapsed();
        if tr.enabled() {
            // The head request waited longest; report its wait as the
            // batch's queue component.
            let queue_s = batch
                .iter()
                .map(|(_, w)| w.as_secs_f64())
                .fold(0.0f64, f64::max);
            let wu = worker as u64;
            tr.span(wu, span_t, scidl_trace::EventKind::BatchDispatch {
                worker: wu,
                batch: b as u64,
                queue_s,
                compute_s: compute.as_secs_f64(),
            });
            tr.row(scidl_trace::IterRow {
                run: 0,
                kind: "serve",
                track: wu,
                iter: batch_idx,
                start_s: span_t,
                compute_s: compute.as_secs_f64(),
                comm_s: 0.0,
                ps_s: 0.0,
                queue_s,
                staleness: 0,
                loss: 0.0,
                batch: b as u64,
            });
        }
        batch_idx += 1;
        for (i, (req, queue_wait)) in batch.into_iter().enumerate() {
            recorder.push(queue_wait.as_secs_f64(), compute.as_secs_f64());
            // A client that dropped its receiver just loses the answer.
            let _ = req.reply.send(InferResult {
                logits: y.item(i).to_vec(),
                queue_wait,
                compute,
                batch_size: b,
                model_iteration: model.iteration,
            });
        }
    }
    recorder
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ModelRegistry, ServingModel};
    use scidl_nn::arch::hep_small;
    use scidl_tensor::TensorRng;

    fn registry(seed: u64, iteration: u64) -> Arc<ModelRegistry> {
        let mut rng = TensorRng::new(seed);
        Arc::new(ModelRegistry::new(ServingModel::new(hep_small(&mut rng), iteration, seed)))
    }

    fn probe(seed: u64) -> Tensor {
        let mut rng = TensorRng::new(seed);
        rng.uniform_tensor(Shape4::new(1, 3, 32, 32), -1.0, 1.0)
    }

    #[test]
    fn served_logits_match_direct_inference() {
        let reg = registry(31, 5);
        let server = Server::start(Arc::clone(&reg), ServerConfig::default());
        let client = server.client();
        let x = probe(1);
        let want = reg.current().network.infer(&x);
        let got = client.infer(x).unwrap();
        assert_eq!(got.logits, want.item(0), "served logits must be bit-identical");
        assert_eq!(got.model_iteration, 5);
        let rec = server.shutdown();
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn batched_requests_each_get_their_own_logits() {
        let reg = registry(32, 0);
        let cfg = ServerConfig {
            workers: 1,
            queue_capacity: 64,
            policy: BatchPolicy::dynamic(4, Duration::from_millis(200)),
        };
        let server = Server::start(Arc::clone(&reg), cfg);
        let client = server.client();
        let inputs: Vec<Tensor> = (0..4).map(|i| probe(100 + i)).collect();
        let rxs: Vec<_> = inputs.iter().map(|x| client.submit(x.clone()).unwrap()).collect();
        for (x, rx) in inputs.iter().zip(rxs) {
            let got = rx.recv().unwrap();
            let want = reg.current().network.infer(x);
            assert_eq!(got.logits, want.item(0));
        }
        let rec = server.shutdown();
        assert_eq!(rec.len(), 4);
    }

    #[test]
    fn rejects_bad_batch_dimension() {
        let reg = registry(33, 0);
        let server = Server::start(reg, ServerConfig::default());
        let client = server.client();
        let mut rng = TensorRng::new(2);
        let x = rng.uniform_tensor(Shape4::new(2, 3, 32, 32), -1.0, 1.0);
        assert!(matches!(client.infer(x), Err(ServeError::BadInput(_))));
        server.shutdown();
    }

    #[test]
    fn hot_swap_redirects_subsequent_requests() {
        let reg = registry(34, 1);
        let server = Server::start(Arc::clone(&reg), ServerConfig::default());
        let client = server.client();
        assert_eq!(client.infer(probe(3)).unwrap().model_iteration, 1);
        let mut rng = TensorRng::new(35);
        reg.swap(ServingModel::new(hep_small(&mut rng), 2, 35));
        assert_eq!(client.infer(probe(3)).unwrap().model_iteration, 2);
        server.shutdown();
    }

    #[test]
    fn shutdown_merges_latency_accounts_across_workers() {
        let reg = registry(36, 0);
        let cfg = ServerConfig { workers: 2, queue_capacity: 64, policy: BatchPolicy::batch1() };
        let server = Server::start(reg, cfg);
        let client = server.client();
        let rxs: Vec<_> = (0..6).map(|i| client.submit(probe(200 + i)).unwrap()).collect();
        for rx in rxs {
            rx.recv().unwrap();
        }
        let rec = server.shutdown();
        assert_eq!(rec.len(), 6);
        let total = rec.total_summary().unwrap();
        assert!(total.min >= 0.0 && total.count == 6);
    }
}
