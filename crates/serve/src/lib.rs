//! `scidl-serve` — dynamic-batching inference serving for trained
//! `scidl` models.
//!
//! Training at 15 PF (the paper's subject) produces checkpoints; this
//! crate is the other half of the lifecycle: answering classification
//! requests from those checkpoints at low latency. The KNL efficiency
//! analysis that shapes training (small minibatches waste the node —
//! Sec. II-A) bites serving even harder, because an open-loop request
//! stream naturally arrives one image at a time. The subsystem therefore
//! centres on a *dynamic batcher* that coalesces concurrent requests up
//! to a batch-size cap or a queueing deadline, trading a bounded latency
//! increase for a multiple of sustained throughput.
//!
//! Serving is also the tier where failures are most visible: a crashed
//! worker thread or a corrupt checkpoint turns directly into user-facing
//! errors. The crate therefore layers a resilience stack over the
//! batcher — supervised workers (panic containment, heartbeat-based hang
//! detection, backoff respawn, in-flight re-queue), deadline-aware
//! admission control with typed sheds and budgeted client retry, and a
//! validate-before-publish hot-swap guarded by a circuit breaker — all
//! drivable by the same declarative [`FaultPlan`](scidl_cluster::faults::FaultPlan)
//! chaos schedule in both the threaded server and the virtual-time sim.
//!
//! Modules:
//!
//! * [`queue`] — bounded MPMC request queue + deadline batch former with
//!   watermark shedding and expiry ([`BatchPolicy`], [`BatchQueue`]),
//! * [`registry`] — checkpoint loading with the bit-identical round-trip
//!   guarantee, atomic hot-swap, and the swap circuit breaker
//!   ([`ModelRegistry`]),
//! * [`server`] — the supervised worker pool over
//!   `scidl_nn::Network::infer_with` ([`Server`], [`Client`]),
//! * [`loadgen`] — seeded open-loop Poisson arrivals and HEP request
//!   inputs ([`PoissonArrivals`]),
//! * [`sim`] — deterministic virtual-time replay of the same semantics
//!   (including chaos) against the calibrated KNL cost model
//!   ([`simulate`]), which is what `scidl-bench serving` sweeps,
//! * [`fleet`] — the fleet tier: a replicated [`Router`] with pluggable
//!   dispatch, fleet-level priority admission, an SLO autoscaler and
//!   canary rollouts, mirrored bit-deterministically by
//!   [`simulate_fleet`] (what `scidl-bench serving --fleet` sweeps).

#![warn(missing_docs)]

pub mod fleet;
pub mod loadgen;
pub mod queue;
pub mod registry;
pub mod server;
pub mod sim;

pub use fleet::{
    simulate_fleet, AutoscalerConfig, CanaryConfig, CanaryDecision, DispatchPolicy, FleetConfig,
    FleetReport, FleetSimConfig, FleetSimOutcome, Priority, PriorityAdmission, Router,
    SimAutoscaler, SimCanary,
};
pub use loadgen::{HepRequestSource, PoissonArrivals};
pub use queue::{BatchPolicy, BatchQueue, Popped, SubmitError};
pub use registry::{check_roundtrip, ModelRegistry, ServingModel, SwapError};
pub use server::{
    Client, InferResult, ReplyReceiver, RetryBudget, RetryPolicy, ServeError, Server, ServerConfig,
    ServerReport, SupervisorConfig,
};
pub use sim::{simulate, ServiceModel, SimConfig, SimOutcome};
