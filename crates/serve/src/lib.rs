//! `scidl-serve` — dynamic-batching inference serving for trained
//! `scidl` models.
//!
//! Training at 15 PF (the paper's subject) produces checkpoints; this
//! crate is the other half of the lifecycle: answering classification
//! requests from those checkpoints at low latency. The KNL efficiency
//! analysis that shapes training (small minibatches waste the node —
//! Sec. II-A) bites serving even harder, because an open-loop request
//! stream naturally arrives one image at a time. The subsystem therefore
//! centres on a *dynamic batcher* that coalesces concurrent requests up
//! to a batch-size cap or a queueing deadline, trading a bounded latency
//! increase for a multiple of sustained throughput.
//!
//! Modules:
//!
//! * [`queue`] — bounded MPMC request queue + deadline batch former
//!   ([`BatchPolicy`], [`BatchQueue`]),
//! * [`registry`] — checkpoint loading with the bit-identical round-trip
//!   guarantee and atomic hot-swap ([`ModelRegistry`]),
//! * [`server`] — the worker pool over `scidl_nn::Network::infer_with`
//!   ([`Server`], [`Client`]),
//! * [`loadgen`] — seeded open-loop Poisson arrivals and HEP request
//!   inputs ([`PoissonArrivals`]),
//! * [`sim`] — deterministic virtual-time replay of the same semantics
//!   against the calibrated KNL cost model ([`simulate`]), which is what
//!   `scidl-bench serving` sweeps.

#![warn(missing_docs)]

pub mod loadgen;
pub mod queue;
pub mod registry;
pub mod server;
pub mod sim;

pub use loadgen::{HepRequestSource, PoissonArrivals};
pub use queue::{BatchPolicy, BatchQueue, QueueFull};
pub use registry::{check_roundtrip, ModelRegistry, ServingModel};
pub use server::{Client, InferResult, ServeError, Server, ServerConfig};
pub use sim::{simulate, ServiceModel, SimConfig, SimOutcome};
