//! Deterministic open-loop load generation.
//!
//! Serving benchmarks need *open-loop* arrivals: requests arrive on a
//! schedule independent of how fast the server answers, so queueing
//! delay is measured rather than hidden (closed-loop clients
//! self-throttle and flatten the tail). [`PoissonArrivals`] produces the
//! canonical open-loop process — exponential inter-arrival gaps at a
//! fixed offered rate — from a seeded [`TensorRng`], so a given
//! `(seed, rate, n)` triple always yields the same schedule, bit for
//! bit. [`HepRequestSource`] pairs the schedule with real sample tensors
//! drawn from a generated `scidl-data` HEP dataset.

use scidl_data::hep::{HepConfig, HepDataset};
use scidl_tensor::{Tensor, TensorRng};

/// Iterator over Poisson arrival timestamps in virtual seconds,
/// starting after the first exponential gap.
pub struct PoissonArrivals {
    rng: TensorRng,
    rate: f64,
    clock: f64,
    remaining: usize,
}

impl PoissonArrivals {
    /// Arrivals at `rate` requests/second; yields exactly `n` timestamps.
    pub fn new(seed: u64, rate: f64, n: usize) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive, got {rate}");
        Self { rng: TensorRng::new(seed), rate, clock: 0.0, remaining: n }
    }
}

impl Iterator for PoissonArrivals {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Inverse-CDF exponential gap. `uniform` is in [0, 1); 1-u is in
        // (0, 1] so the log argument is never zero.
        let u = self.rng.uniform();
        self.clock += -(1.0 - u).ln() / self.rate;
        Some(self.clock)
    }
}

/// Draws request input tensors from a generated HEP dataset, cycling
/// deterministically through a seeded random sample order.
pub struct HepRequestSource {
    dataset: HepDataset,
    rng: TensorRng,
}

impl HepRequestSource {
    /// Generates `n` HEP samples under `config` with `seed`; request
    /// order uses an independent stream of the same seed.
    pub fn new(config: HepConfig, n: usize, seed: u64) -> Self {
        let mut rng = TensorRng::new(seed);
        Self { dataset: HepDataset::generate(config, n, seed), rng: rng.fork(1) }
    }

    /// The next request input: one dataset sample as a `(1, c, h, w)`
    /// tensor.
    pub fn next_request(&mut self) -> Tensor {
        let idx = self.rng.below(self.dataset.len());
        let (x, _labels) = self.dataset.gather(&[idx]);
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_deterministic_and_monotonic() {
        let a: Vec<f64> = PoissonArrivals::new(9, 100.0, 50).collect();
        let b: Vec<f64> = PoissonArrivals::new(9, 100.0, 50).collect();
        assert_eq!(a, b, "same seed must give bit-identical schedules");
        assert_eq!(a.len(), 50);
        assert!(a.windows(2).all(|w| w[1] > w[0]), "strictly increasing");
        assert!(a[0] > 0.0);
    }

    #[test]
    fn mean_gap_approaches_inverse_rate() {
        let n = 4000;
        let rate = 250.0;
        let last = PoissonArrivals::new(10, rate, n).last().unwrap();
        let mean_gap = last / n as f64;
        let expect = 1.0 / rate;
        assert!(
            (mean_gap - expect).abs() < 0.15 * expect,
            "mean gap {mean_gap} vs expected {expect}"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<f64> = PoissonArrivals::new(1, 100.0, 10).collect();
        let b: Vec<f64> = PoissonArrivals::new(2, 100.0, 10).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn hep_source_yields_unit_batch_samples() {
        let mut src = HepRequestSource::new(HepConfig::small(), 8, 3);
        let x = src.next_request();
        assert_eq!(x.shape().n, 1);
        assert_eq!(x.shape().c, 3);
        assert!(x.all_finite());
        // Deterministic across rebuilds.
        let mut src2 = HepRequestSource::new(HepConfig::small(), 8, 3);
        assert_eq!(src2.next_request().data(), x.data());
    }
}
