//! Deterministic discrete-event simulation of the serving tier.
//!
//! The real threaded server ([`crate::server`]) measures wall-clock time
//! and is therefore not reproducible run to run. The benchmark sweep
//! instead replays a fixed arrival schedule against a *virtual-time*
//! model of the same queue/batcher/worker-pool semantics, with batch
//! service times taken from the calibrated KNL node model
//! (`scidl-cluster::knl`). Every quantity is pure f64 arithmetic over the
//! seeded schedule, so a given `(seed, rate, policy)` produces
//! bit-identical latency frontiers on every run — the property the
//! `scidl-bench serving` acceptance check relies on.
//!
//! Semantics mirrored from the real implementation:
//!
//! * bounded queue, arrivals rejected when `queue_capacity` are waiting,
//! * batch forms when `max_batch` requests wait or the oldest has waited
//!   `max_delay`, whichever comes first,
//! * a batch starts when a worker is free (the trigger can be delayed by
//!   a busy pool, in which case later arrivals may join the batch),
//! * per-request latency = queue wait (arrival → batch start) + compute
//!   (the whole batch's service time).

use crate::queue::BatchPolicy;
use scidl_cluster::knl::{KnlModel, LayerCost, RateClass};
use scidl_core::metrics::LatencyRecorder;
use scidl_nn::arch;
use scidl_nn::network::Network;
use scidl_tensor::{Shape4, TensorRng};

/// Inference-time cost model of one network on one KNL node: per-layer
/// *forward-only* costs plus the calibrated node model.
pub struct ServiceModel {
    /// Human-readable workload name.
    pub name: String,
    /// Forward-only per-layer costs (`train_flops_per_image` holds the
    /// forward FLOPs here; there is no backward pass at serving time).
    pub layers: Vec<LayerCost>,
    /// The node model supplying rates and the small-batch penalty.
    pub knl: KnlModel,
}

impl ServiceModel {
    /// Builds the forward-only cost table for `net` at `input`, using the
    /// same name-based rate classification as `scidl-core::workloads` but
    /// with forward FLOPs and forward-only activation traffic.
    pub fn for_network(name: &str, net: &Network, input: Shape4, knl: KnlModel) -> Self {
        let mut s = input.with_n(1);
        let mut layers = Vec::with_capacity(net.layers().len());
        for l in net.layers() {
            let lname = l.name().to_string();
            let fwd = l.forward_flops_per_image(s);
            let os = l.out_shape(s);
            let class = if lname.starts_with("conv")
                || lname.starts_with("enc")
                || lname.starts_with("head")
            {
                RateClass::Conv { cin: s.c }
            } else if lname.starts_with("dec") && !lname.contains("relu") {
                RateClass::Conv { cin: os.c }
            } else if lname.starts_with("fc") {
                RateClass::DenseSmall
            } else {
                // Forward touches input + output activations once.
                let bytes = 4 * (s.item_len() + os.item_len());
                RateClass::MemoryBound { bytes_per_image: bytes as u64 }
            };
            layers.push(LayerCost { name: lname, train_flops_per_image: fwd, class });
            s = os;
        }
        Self { name: name.into(), layers, knl }
    }

    /// The paper's HEP classifier at its 224×224 input on a default KNL
    /// node — the workload the serving acceptance criterion is stated on.
    pub fn hep() -> Self {
        let mut rng = TensorRng::new(0);
        let net = arch::hep_network(&mut rng);
        Self::for_network("hep", &net, arch::HEP_INPUT, KnlModel::default())
    }

    /// Service time of one forward pass over a batch of `b` requests.
    pub fn batch_secs(&self, b: usize) -> f64 {
        self.knl.compute_time(&self.layers, b)
    }

    /// Saturated throughput (images/s) when serving back-to-back batches
    /// of exactly `b`.
    pub fn saturated_rate(&self, b: usize) -> f64 {
        b.max(1) as f64 / self.batch_secs(b)
    }
}

/// Virtual-time serving configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Number of parallel workers (KNL nodes) pulling batches.
    pub workers: usize,
    /// Bounded queue capacity; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Batch-formation policy.
    pub policy: BatchPolicy,
}

/// Everything the simulation observed.
pub struct SimOutcome {
    /// Queue-wait / compute split of every *served* request.
    pub recorder: LatencyRecorder,
    /// Requests served to completion.
    pub completed: usize,
    /// Requests shed at admission (queue full).
    pub rejected: usize,
    /// Virtual time at which the last batch finished.
    pub makespan: f64,
    /// Ids of served requests, in dispatch order.
    pub served_ids: Vec<usize>,
    /// Ids of shed requests, in arrival order.
    pub rejected_ids: Vec<usize>,
    /// Size of every dispatched batch, in dispatch order.
    pub batch_sizes: Vec<usize>,
}

impl SimOutcome {
    /// Sustained goodput: served requests per virtual second.
    pub fn throughput(&self) -> f64 {
        if self.makespan > 0.0 {
            self.completed as f64 / self.makespan
        } else {
            0.0
        }
    }
}

struct SimState<'a> {
    model: &'a ServiceModel,
    policy: BatchPolicy,
    max_delay: f64,
    queue: Vec<(usize, f64)>,
    worker_free: Vec<f64>,
    tr: scidl_trace::TraceHandle,
    out: SimOutcome,
}

impl SimState<'_> {
    /// Forms and dispatches every batch whose start time is ≤ `t_limit`.
    fn drain_until(&mut self, t_limit: f64) {
        loop {
            if self.queue.is_empty() {
                return;
            }
            // When is the batch former triggered? Either the queue
            // already holds a full batch (triggered the moment the
            // `max_batch`-th request arrived) or the head's deadline.
            let trigger = if self.queue.len() >= self.policy.max_batch {
                self.queue[self.policy.max_batch - 1].1
            } else {
                self.queue[0].1 + self.max_delay
            };
            // The batch actually starts when a worker is also free.
            let free = self.worker_free.iter().cloned().fold(f64::INFINITY, f64::min);
            let start = trigger.max(free).max(self.queue[0].1);
            if start > t_limit {
                return;
            }
            // Everything that arrived by the start instant is eligible;
            // a busy pool lets late arrivals ride along.
            let eligible = self.queue.iter().take_while(|&&(_, a)| a <= start).count();
            let b = eligible.min(self.policy.max_batch);
            let svc = self.model.batch_secs(b);
            let slot = self
                .worker_free
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            if self.tr.enabled() {
                // Virtual timestamps: the trace of a seeded schedule is
                // bit-identical run to run.
                let (wu, bu) = (slot as u64, self.out.batch_sizes.len() as u64);
                let queue_s = start - self.queue[0].1;
                self.tr.event_at(wu, start, svc, scidl_trace::EventKind::BatchDispatch {
                    worker: wu,
                    batch: b as u64,
                    queue_s,
                    compute_s: svc,
                });
                self.tr.row(scidl_trace::IterRow {
                    run: 0,
                    kind: "serve",
                    track: wu,
                    iter: bu,
                    start_s: start,
                    compute_s: svc,
                    comm_s: 0.0,
                    ps_s: 0.0,
                    queue_s,
                    staleness: 0,
                    loss: 0.0,
                    batch: b as u64,
                });
            }
            for &(id, arrived) in &self.queue[..b] {
                self.out.recorder.push(start - arrived, svc);
                self.out.served_ids.push(id);
            }
            self.out.batch_sizes.push(b);
            self.out.completed += b;
            let end = start + svc;
            self.out.makespan = self.out.makespan.max(end);
            self.worker_free[slot] = end;
            self.queue.drain(..b);
        }
    }
}

/// Replays `arrivals` (sorted virtual timestamps, request id = index)
/// through the batcher/worker-pool model and returns the full outcome.
pub fn simulate(model: &ServiceModel, arrivals: &[f64], cfg: &SimConfig) -> SimOutcome {
    assert!(cfg.workers >= 1 && cfg.queue_capacity >= 1);
    assert!(
        arrivals.windows(2).all(|w| w[1] >= w[0]),
        "arrival schedule must be sorted"
    );
    let mut st = SimState {
        model,
        policy: cfg.policy,
        max_delay: cfg.policy.max_delay.as_secs_f64(),
        queue: Vec::new(),
        worker_free: vec![0.0; cfg.workers],
        tr: scidl_trace::TraceHandle::begin("serve-sim"),
        out: SimOutcome {
            recorder: LatencyRecorder::new(),
            completed: 0,
            rejected: 0,
            makespan: 0.0,
            served_ids: Vec::new(),
            rejected_ids: Vec::new(),
            batch_sizes: Vec::new(),
        },
    };
    for (id, &t) in arrivals.iter().enumerate() {
        // Dispatch everything that happened before this arrival, then
        // apply admission control against the *current* queue depth.
        st.drain_until(t);
        if st.queue.len() >= cfg.queue_capacity {
            st.out.rejected += 1;
            st.out.rejected_ids.push(id);
        } else {
            st.queue.push((id, t));
        }
    }
    st.drain_until(f64::INFINITY);
    st.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::PoissonArrivals;
    use std::time::Duration;

    fn dyn_cfg(max_batch: usize, delay_ms: u64) -> SimConfig {
        SimConfig {
            workers: 1,
            queue_capacity: 256,
            policy: BatchPolicy::dynamic(max_batch, Duration::from_millis(delay_ms)),
        }
    }

    #[test]
    fn hep_model_shows_the_batch_efficiency_cliff() {
        let m = ServiceModel::hep();
        let r1 = m.saturated_rate(1);
        let r32 = m.saturated_rate(32);
        assert!(
            r32 >= 2.0 * r1,
            "batch-32 rate {r32:.1}/s must be ≥2× batch-1 rate {r1:.1}/s"
        );
    }

    #[test]
    fn simulation_is_bit_deterministic() {
        let m = ServiceModel::hep();
        let arrivals: Vec<f64> = PoissonArrivals::new(7, 300.0, 400).collect();
        let a = simulate(&m, &arrivals, &dyn_cfg(32, 10));
        let b = simulate(&m, &arrivals, &dyn_cfg(32, 10));
        assert_eq!(a.served_ids, b.served_ids);
        assert_eq!(a.batch_sizes, b.batch_sizes);
        assert_eq!(
            a.recorder.total_summary().unwrap().p99.to_bits(),
            b.recorder.total_summary().unwrap().p99.to_bits()
        );
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    }

    #[test]
    fn light_load_batch1_has_no_queue_wait() {
        let m = ServiceModel::hep();
        // Arrivals far slower than batch-1 service: each request is
        // served alone, immediately.
        let arrivals: Vec<f64> = (0..20).map(|i| i as f64 * 1.0).collect();
        let out = simulate(&m, &arrivals, &dyn_cfg(1, 0));
        assert_eq!(out.completed, 20);
        assert_eq!(out.rejected, 0);
        assert!(out.batch_sizes.iter().all(|&b| b == 1));
        let q = out.recorder.queue_summary().unwrap();
        assert!(q.max < 1e-12, "idle server should start batches instantly, got {}", q.max);
    }

    #[test]
    fn saturating_load_forms_full_batches() {
        let m = ServiceModel::hep();
        // Offer ~3× the batch-32 saturated rate: the queue stays deep and
        // the vast majority of batches reach max_batch.
        let rate = 3.0 * m.saturated_rate(32);
        let arrivals: Vec<f64> = PoissonArrivals::new(11, rate, 600).collect();
        let mut cfg = dyn_cfg(32, 10);
        cfg.queue_capacity = 64;
        let out = simulate(&m, &arrivals, &cfg);
        assert!(out.rejected > 0, "overload must shed load");
        let full = out.batch_sizes.iter().filter(|&&b| b == 32).count();
        assert!(
            full * 2 > out.batch_sizes.len(),
            "most batches should be full: {full}/{}",
            out.batch_sizes.len()
        );
        // Dynamic batching at saturation clears ≥2× what batch-1 can.
        let out1 = simulate(&m, &arrivals, &{
            let mut c = dyn_cfg(1, 0);
            c.queue_capacity = 64;
            c
        });
        assert!(out.throughput() >= 2.0 * out1.throughput());
    }

    #[test]
    fn deadline_caps_queue_wait_when_pool_is_idle() {
        let m = ServiceModel::hep();
        // Two requests 1 ms apart, max_batch 32, 5 ms deadline: the
        // batch fires at t0 + 5 ms with both aboard.
        let arrivals = vec![0.0, 0.001];
        let out = simulate(&m, &arrivals, &dyn_cfg(32, 5));
        assert_eq!(out.batch_sizes, vec![2]);
        let q = out.recorder.queue_summary().unwrap();
        assert!((q.max - 0.005).abs() < 1e-12, "head waited {}", q.max);
    }

    #[test]
    fn rejected_plus_served_partition_all_arrivals() {
        let m = ServiceModel::hep();
        let rate = 4.0 * m.saturated_rate(8);
        let arrivals: Vec<f64> = PoissonArrivals::new(13, rate, 300).collect();
        let mut cfg = dyn_cfg(8, 2);
        cfg.queue_capacity = 16;
        let out = simulate(&m, &arrivals, &cfg);
        let mut all: Vec<usize> =
            out.served_ids.iter().chain(&out.rejected_ids).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..arrivals.len()).collect::<Vec<_>>());
        assert_eq!(out.completed + out.rejected, arrivals.len());
        assert_eq!(out.recorder.len(), out.completed);
    }

    #[test]
    fn multiple_workers_increase_throughput() {
        let m = ServiceModel::hep();
        let rate = 6.0 * m.saturated_rate(32);
        let arrivals: Vec<f64> = PoissonArrivals::new(17, rate, 800).collect();
        let mut one = dyn_cfg(32, 10);
        one.queue_capacity = 512;
        let mut two = one;
        two.workers = 2;
        let t1 = simulate(&m, &arrivals, &one).throughput();
        let t2 = simulate(&m, &arrivals, &two).throughput();
        assert!(t2 > 1.5 * t1, "2 workers: {t2:.0}/s vs 1 worker: {t1:.0}/s");
    }
}
