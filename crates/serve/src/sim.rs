//! Deterministic discrete-event simulation of the serving tier.
//!
//! The real threaded server ([`crate::server`]) measures wall-clock time
//! and is therefore not reproducible run to run. The benchmark sweep
//! instead replays a fixed arrival schedule against a *virtual-time*
//! model of the same queue/batcher/worker-pool semantics, with batch
//! service times taken from the calibrated KNL node model
//! (`scidl-cluster::knl`). Every quantity is pure f64 arithmetic over the
//! seeded schedule, so a given `(seed, rate, policy, plan)` produces
//! bit-identical latency frontiers on every run — the property the
//! `scidl-bench serving` acceptance check relies on.
//!
//! Semantics mirrored from the real implementation:
//!
//! * bounded queue, arrivals shed once `shed_watermark` (default: the
//!   capacity) are waiting,
//! * batch forms when `max_batch` requests wait or the oldest has waited
//!   `max_delay`, whichever comes first,
//! * a batch starts when a worker is free (the trigger can be delayed by
//!   a busy pool, in which case later arrivals may join the batch),
//! * requests whose deadline lapses in the queue are shed before any
//!   compute is charged,
//! * per-request latency = queue wait (arrival → batch start) + compute
//!   (the whole batch's service time).
//!
//! And the resilience semantics, driven by the *same*
//! [`FaultPlan`](scidl_cluster::faults::FaultPlan) the threaded server
//! consumes:
//!
//! * a [`WorkerCrash`](scidl_cluster::faults::WorkerCrash) kills its
//!   slot mid-batch (halfway through the service time); the batch's
//!   requests are re-queued at the head of the line — or counted *lost*
//!   past `max_requeues` — and the slot returns `respawn_secs` later,
//! * a [`SlowWorker`](scidl_cluster::faults::SlowWorker) stretches the
//!   slot's service times by its factor over its batch window,
//! * scheduled hot-swap attempts ([`SimConfig::swap_schedule`]) replay
//!   the registry's validate-before-publish circuit breaker: attempts
//!   the plan marks corrupt are rejected, consecutive rejections open
//!   the breaker, and an open breaker fails attempts fast.

use crate::queue::BatchPolicy;
use scidl_cluster::faults::FaultPlan;
use scidl_cluster::knl::{KnlModel, LayerCost, RateClass};
use scidl_core::metrics::LatencyRecorder;
use scidl_nn::arch;
use scidl_nn::network::Network;
use scidl_tensor::{Shape4, TensorRng};

/// Inference-time cost model of one network on one KNL node: per-layer
/// *forward-only* costs plus the calibrated node model.
pub struct ServiceModel {
    /// Human-readable workload name.
    pub name: String,
    /// Forward-only per-layer costs (`train_flops_per_image` holds the
    /// forward FLOPs here; there is no backward pass at serving time).
    pub layers: Vec<LayerCost>,
    /// The node model supplying rates and the small-batch penalty.
    pub knl: KnlModel,
}

impl ServiceModel {
    /// Builds the forward-only cost table for `net` at `input`, using the
    /// same name-based rate classification as `scidl-core::workloads` but
    /// with forward FLOPs and forward-only activation traffic.
    pub fn for_network(name: &str, net: &Network, input: Shape4, knl: KnlModel) -> Self {
        let mut s = input.with_n(1);
        let mut layers = Vec::with_capacity(net.layers().len());
        for l in net.layers() {
            let lname = l.name().to_string();
            let fwd = l.forward_flops_per_image(s);
            let os = l.out_shape(s);
            let class = if lname.starts_with("conv")
                || lname.starts_with("enc")
                || lname.starts_with("head")
            {
                RateClass::Conv { cin: s.c }
            } else if lname.starts_with("dec") && !lname.contains("relu") {
                RateClass::Conv { cin: os.c }
            } else if lname.starts_with("fc") {
                RateClass::DenseSmall
            } else {
                // Forward touches input + output activations once.
                let bytes = 4 * (s.item_len() + os.item_len());
                RateClass::MemoryBound { bytes_per_image: bytes as u64 }
            };
            layers.push(LayerCost { name: lname, train_flops_per_image: fwd, class });
            s = os;
        }
        Self { name: name.into(), layers, knl }
    }

    /// The paper's HEP classifier at its 224×224 input on a default KNL
    /// node — the workload the serving acceptance criterion is stated on.
    pub fn hep() -> Self {
        let mut rng = TensorRng::new(0);
        let net = arch::hep_network(&mut rng);
        Self::for_network("hep", &net, arch::HEP_INPUT, KnlModel::default())
    }

    /// Service time of one forward pass over a batch of `b` requests.
    pub fn batch_secs(&self, b: usize) -> f64 {
        self.knl.compute_time(&self.layers, b)
    }

    /// Saturated throughput (images/s) when serving back-to-back batches
    /// of exactly `b`.
    pub fn saturated_rate(&self, b: usize) -> f64 {
        b.max(1) as f64 / self.batch_secs(b)
    }
}

/// Virtual-time serving configuration. Not `Copy` — it carries the chaos
/// plan; clone it to vary one knob across runs.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of parallel workers (KNL nodes) pulling batches.
    pub workers: usize,
    /// Bounded queue capacity.
    pub queue_capacity: usize,
    /// Batch-formation policy.
    pub policy: BatchPolicy,
    /// Queue depth at which admission sheds; `None` means the capacity.
    pub shed_watermark: Option<usize>,
    /// Relative deadline attached to every arrival; requests still
    /// queued when it lapses are shed before compute.
    pub deadline_secs: Option<f64>,
    /// Chaos plan: worker crashes, slow workers, corrupt swap attempts.
    pub faults: FaultPlan,
    /// Virtual times of hot-swap attempts (replayed through the breaker
    /// model; corruption comes from `faults.swap_is_corrupt`).
    pub swap_schedule: Vec<f64>,
    /// Virtual times at which an operator calls
    /// `ModelRegistry::reset_breaker`: the breaker closes and the
    /// consecutive-failure streak restarts from zero. A reset scheduled
    /// at the same instant as a swap attempt takes effect first.
    pub breaker_resets: Vec<f64>,
    /// Consecutive bad swaps that open the breaker.
    pub breaker_threshold: u32,
    /// Re-queues a request survives after losing its worker before it
    /// counts as lost.
    pub max_requeues: u32,
}

impl SimConfig {
    /// A fault-free configuration with the default resilience knobs
    /// (watermark = capacity, no deadlines, breaker threshold 3, two
    /// re-queues).
    pub fn new(workers: usize, queue_capacity: usize, policy: BatchPolicy) -> Self {
        Self {
            workers,
            queue_capacity,
            policy,
            shed_watermark: None,
            deadline_secs: None,
            faults: FaultPlan::none(),
            swap_schedule: Vec::new(),
            breaker_resets: Vec::new(),
            breaker_threshold: 3,
            max_requeues: 2,
        }
    }
}

/// Everything the simulation observed.
pub struct SimOutcome {
    /// Queue-wait / compute split of every *served* request.
    pub recorder: LatencyRecorder,
    /// Requests served to completion.
    pub completed: usize,
    /// Requests shed at admission (watermark / queue full).
    pub rejected: usize,
    /// Requests shed in the queue when their deadline lapsed.
    pub expired: usize,
    /// Requests lost to worker crashes after exhausting their re-queue
    /// budget.
    pub lost: usize,
    /// Successful re-queues of crash-recovered requests.
    pub requeued: usize,
    /// Worker crashes that fired.
    pub crashes: usize,
    /// Hot-swap attempts that reached validation (breaker closed).
    pub swap_attempts: usize,
    /// Swap attempts rejected: corrupt checkpoints plus breaker-open
    /// fast failures.
    pub swap_rejects: usize,
    /// Swaps that validated and published.
    pub swap_published: usize,
    /// Whether the breaker opened during the run.
    pub breaker_opened: bool,
    /// Virtual time at which the pool went fully idle.
    pub makespan: f64,
    /// Ids of served requests, in dispatch order.
    pub served_ids: Vec<usize>,
    /// Ids of shed requests, in arrival order.
    pub rejected_ids: Vec<usize>,
    /// Ids of deadline-expired requests, in expiry order.
    pub expired_ids: Vec<usize>,
    /// Ids of crash-lost requests, in loss order.
    pub lost_ids: Vec<usize>,
    /// Size of every dispatched batch, in dispatch order.
    pub batch_sizes: Vec<usize>,
}

impl SimOutcome {
    /// Sustained goodput: served requests per virtual second.
    pub fn throughput(&self) -> f64 {
        if self.makespan > 0.0 {
            self.completed as f64 / self.makespan
        } else {
            0.0
        }
    }

    /// Total requests offered (served + every shed/lost category).
    pub fn offered(&self) -> usize {
        self.completed + self.rejected + self.expired + self.lost
    }

    /// Fraction of offered requests that did not get an answer:
    /// admission sheds, deadline expiries and crash losses.
    pub fn shed_rate(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            0.0
        } else {
            (self.rejected + self.expired + self.lost) as f64 / offered as f64
        }
    }
}

#[derive(Clone, Copy)]
struct QItem {
    id: usize,
    /// Last (re-)queueing time; queue wait counts from here.
    arrived: f64,
    /// Absolute deadline from the original arrival.
    deadline: Option<f64>,
    attempts: u32,
}

struct SimState<'a> {
    model: &'a ServiceModel,
    cfg: &'a SimConfig,
    max_delay: f64,
    queue: Vec<QItem>,
    worker_free: Vec<f64>,
    /// Successful batches dispatched per slot (the ordinal crash plans
    /// index with `after_batches`, matching the threaded worker).
    slot_batches: Vec<u64>,
    /// One flag per `faults.worker_crashes` entry: each fires once.
    crash_fired: Vec<bool>,
    tr: scidl_trace::TraceHandle,
    out: SimOutcome,
}

impl SimState<'_> {
    /// Sheds every queued request whose deadline lapsed by `cut`.
    /// Returns how many were shed.
    fn expire(&mut self, cut: f64) -> usize {
        if self.cfg.deadline_secs.is_none() {
            return 0;
        }
        let before = self.queue.len();
        let mut kept = Vec::with_capacity(before);
        for q in self.queue.drain(..) {
            if q.deadline.is_some_and(|d| d <= cut) {
                self.out.expired += 1;
                self.out.expired_ids.push(q.id);
            } else {
                kept.push(q);
            }
        }
        self.queue = kept;
        let n = before - self.queue.len();
        if n > 0 && self.tr.enabled() {
            self.tr.event_at(u64::MAX, cut, 0.0, scidl_trace::EventKind::Shed {
                worker: u64::MAX,
                count: n as u64,
                depth: self.queue.len() as u64,
                reason: "deadline",
            });
        }
        n
    }

    /// Forms and dispatches every batch whose start time is ≤ `t_limit`.
    fn drain_until(&mut self, t_limit: f64) {
        loop {
            if self.queue.is_empty() {
                return;
            }
            // When is the batch former triggered? Either the queue
            // already holds a full batch (triggered the moment the
            // `max_batch`-th request arrived) or the head's deadline.
            let trigger = if self.queue.len() >= self.cfg.policy.max_batch {
                self.queue[self.cfg.policy.max_batch - 1].arrived
            } else {
                self.queue[0].arrived + self.max_delay
            };
            // The batch actually starts when a worker is also free.
            let free = self.worker_free.iter().cloned().fold(f64::INFINITY, f64::min);
            let start = trigger.max(free).max(self.queue[0].arrived);
            // Expired requests never enter a batch: shed everything that
            // lapsed by the would-be start (bounded by `t_limit` so
            // expiry cannot run ahead of the arrival being admitted),
            // then re-evaluate batch formation against the survivors.
            if self.expire(start.min(t_limit)) > 0 {
                continue;
            }
            if start > t_limit {
                return;
            }
            // Everything that arrived by the start instant is eligible;
            // a busy pool lets late arrivals ride along.
            let eligible = self.queue.iter().take_while(|q| q.arrived <= start).count();
            let b = eligible.min(self.cfg.policy.max_batch);
            let slot = self
                .worker_free
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            // Chaos stragglers stretch this slot's service time.
            let svc = self.model.batch_secs(b)
                * self.cfg.faults.slow_worker_factor(slot, self.slot_batches[slot]);

            // Chaos crash: the slot dies halfway through the batch. Its
            // requests go back to the head of the line (or are lost past
            // the re-queue budget) and the slot returns after its
            // respawn time — mirroring the threaded supervisor.
            let crash = self.cfg.faults.worker_crashes.iter().enumerate().find(|(ci, c)| {
                c.worker == slot
                    && self.slot_batches[slot] >= c.after_batches
                    && !self.crash_fired[*ci]
            });
            if let Some((ci, c)) = crash {
                let t_crash = start + 0.5 * svc;
                self.crash_fired[ci] = true;
                self.out.crashes += 1;
                self.worker_free[slot] = t_crash + c.respawn_secs;
                self.out.makespan = self.out.makespan.max(self.worker_free[slot]);
                let mut recovered = Vec::with_capacity(b);
                for mut q in self.queue.drain(..b) {
                    q.attempts += 1;
                    if q.attempts > self.cfg.max_requeues {
                        self.out.lost += 1;
                        self.out.lost_ids.push(q.id);
                    } else {
                        q.arrived = t_crash;
                        self.out.requeued += 1;
                        recovered.push(q);
                    }
                }
                let n = recovered.len() as u64;
                self.queue.splice(0..0, recovered);
                if self.tr.enabled() {
                    self.tr.event_at(
                        slot as u64,
                        t_crash,
                        c.respawn_secs,
                        scidl_trace::EventKind::WorkerRespawn {
                            worker: slot as u64,
                            incarnation: self.out.crashes as u64,
                            backoff_s: c.respawn_secs,
                            requeued: n,
                        },
                    );
                }
                continue;
            }

            if self.tr.enabled() {
                // Virtual timestamps: the trace of a seeded schedule is
                // bit-identical run to run.
                let (wu, bu) = (slot as u64, self.out.batch_sizes.len() as u64);
                let queue_s = start - self.queue[0].arrived;
                self.tr.event_at(wu, start, svc, scidl_trace::EventKind::BatchDispatch {
                    worker: wu,
                    batch: b as u64,
                    queue_s,
                    compute_s: svc,
                });
                self.tr.row(scidl_trace::IterRow {
                    run: 0,
                    kind: "serve",
                    track: wu,
                    iter: bu,
                    start_s: start,
                    compute_s: svc,
                    comm_s: 0.0,
                    ps_s: 0.0,
                    queue_s,
                    staleness: 0,
                    loss: 0.0,
                    batch: b as u64,
                });
            }
            for q in &self.queue[..b] {
                self.out.recorder.push(start - q.arrived, svc);
                self.out.served_ids.push(q.id);
            }
            self.out.batch_sizes.push(b);
            self.out.completed += b;
            let end = start + svc;
            self.out.makespan = self.out.makespan.max(end);
            self.worker_free[slot] = end;
            self.slot_batches[slot] += 1;
            self.queue.drain(..b);
        }
    }

    /// Replays the scheduled hot-swap attempts through the registry's
    /// breaker model: corrupt attempts are rejected and advance the
    /// consecutive-failure counter; the open breaker fails attempts fast
    /// without consuming an attempt ordinal, exactly like
    /// `ModelRegistry::load_and_swap_guarded`.
    fn replay_swaps(&mut self) {
        // Merge swap attempts and operator breaker resets into one
        // time-ordered schedule; a reset coinciding with an attempt
        // applies first (rank 0 < 1), mirroring the threaded test
        // sequence reset-then-swap.
        let mut schedule: Vec<(f64, bool)> = self
            .cfg
            .swap_schedule
            .iter()
            .map(|&t| (t, false))
            .chain(self.cfg.breaker_resets.iter().map(|&t| (t, true)))
            .collect();
        schedule.sort_by(|a, b| {
            f64::total_cmp(&a.0, &b.0).then((!a.1).cmp(&(!b.1)))
        });
        let mut failures = 0u32;
        let mut open = false;
        for &(t, is_reset) in &schedule {
            if is_reset {
                failures = 0;
                if open {
                    open = false;
                    if self.tr.enabled() {
                        self.tr.event_at(u64::MAX, t, 0.0, scidl_trace::EventKind::Breaker {
                            open: false,
                            failures: 0,
                        });
                    }
                }
                continue;
            }
            if open {
                self.out.swap_rejects += 1;
                if self.tr.enabled() {
                    self.tr.event_at(u64::MAX, t, 0.0, scidl_trace::EventKind::SwapReject {
                        reason: "breaker_open",
                        failures: failures as u64,
                    });
                }
                continue;
            }
            let k = self.out.swap_attempts as u64;
            self.out.swap_attempts += 1;
            if self.cfg.faults.swap_is_corrupt(k) {
                failures += 1;
                self.out.swap_rejects += 1;
                if self.tr.enabled() {
                    self.tr.event_at(u64::MAX, t, 0.0, scidl_trace::EventKind::SwapReject {
                        reason: "checksum",
                        failures: failures as u64,
                    });
                }
                if failures >= self.cfg.breaker_threshold {
                    open = true;
                    self.out.breaker_opened = true;
                    if self.tr.enabled() {
                        self.tr.event_at(u64::MAX, t, 0.0, scidl_trace::EventKind::Breaker {
                            open: true,
                            failures: failures as u64,
                        });
                    }
                }
            } else {
                failures = 0;
                self.out.swap_published += 1;
            }
        }
    }
}

/// Replays `arrivals` (sorted virtual timestamps, request id = index)
/// through the batcher/worker-pool model — including the configuration's
/// chaos plan — and returns the full outcome. Bit-deterministic in all
/// inputs.
pub fn simulate(model: &ServiceModel, arrivals: &[f64], cfg: &SimConfig) -> SimOutcome {
    assert!(cfg.workers >= 1 && cfg.queue_capacity >= 1);
    assert!(
        arrivals.windows(2).all(|w| w[1] >= w[0]),
        "arrival schedule must be sorted"
    );
    let watermark = cfg.shed_watermark.unwrap_or(cfg.queue_capacity).min(cfg.queue_capacity);
    assert!(watermark >= 1, "shed watermark must be at least 1");
    if let Some(d) = cfg.deadline_secs {
        assert!(d > 0.0, "deadline must be positive");
    }
    let mut st = SimState {
        model,
        cfg,
        max_delay: cfg.policy.max_delay.as_secs_f64(),
        queue: Vec::new(),
        worker_free: vec![0.0; cfg.workers],
        slot_batches: vec![0; cfg.workers],
        crash_fired: vec![false; cfg.faults.worker_crashes.len()],
        tr: scidl_trace::TraceHandle::begin("serve-sim"),
        out: SimOutcome {
            recorder: LatencyRecorder::new(),
            completed: 0,
            rejected: 0,
            expired: 0,
            lost: 0,
            requeued: 0,
            crashes: 0,
            swap_attempts: 0,
            swap_rejects: 0,
            swap_published: 0,
            breaker_opened: false,
            makespan: 0.0,
            served_ids: Vec::new(),
            rejected_ids: Vec::new(),
            expired_ids: Vec::new(),
            lost_ids: Vec::new(),
            batch_sizes: Vec::new(),
        },
    };
    for (id, &t) in arrivals.iter().enumerate() {
        // Dispatch everything that happened before this arrival, then
        // apply admission control against the *current* queue depth.
        st.drain_until(t);
        if st.queue.len() >= watermark {
            st.out.rejected += 1;
            st.out.rejected_ids.push(id);
            if st.tr.enabled() {
                st.tr.event_at(u64::MAX, t, 0.0, scidl_trace::EventKind::Shed {
                    worker: u64::MAX,
                    count: 1,
                    depth: st.queue.len() as u64,
                    reason: "watermark",
                });
            }
        } else {
            let deadline = cfg.deadline_secs.map(|d| t + d);
            st.queue.push(QItem { id, arrived: t, deadline, attempts: 0 });
        }
    }
    st.drain_until(f64::INFINITY);
    st.replay_swaps();
    st.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::PoissonArrivals;
    use std::time::Duration;

    fn dyn_cfg(max_batch: usize, delay_ms: u64) -> SimConfig {
        SimConfig::new(1, 256, BatchPolicy::dynamic(max_batch, Duration::from_millis(delay_ms)))
    }

    #[test]
    fn hep_model_shows_the_batch_efficiency_cliff() {
        let m = ServiceModel::hep();
        let r1 = m.saturated_rate(1);
        let r32 = m.saturated_rate(32);
        assert!(
            r32 >= 2.0 * r1,
            "batch-32 rate {r32:.1}/s must be ≥2× batch-1 rate {r1:.1}/s"
        );
    }

    #[test]
    fn simulation_is_bit_deterministic() {
        let m = ServiceModel::hep();
        let arrivals: Vec<f64> = PoissonArrivals::new(7, 300.0, 400).collect();
        let a = simulate(&m, &arrivals, &dyn_cfg(32, 10));
        let b = simulate(&m, &arrivals, &dyn_cfg(32, 10));
        assert_eq!(a.served_ids, b.served_ids);
        assert_eq!(a.batch_sizes, b.batch_sizes);
        assert_eq!(
            a.recorder.total_summary().unwrap().p99.to_bits(),
            b.recorder.total_summary().unwrap().p99.to_bits()
        );
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    }

    #[test]
    fn light_load_batch1_has_no_queue_wait() {
        let m = ServiceModel::hep();
        // Arrivals far slower than batch-1 service: each request is
        // served alone, immediately.
        let arrivals: Vec<f64> = (0..20).map(|i| i as f64 * 1.0).collect();
        let out = simulate(&m, &arrivals, &dyn_cfg(1, 0));
        assert_eq!(out.completed, 20);
        assert_eq!(out.rejected, 0);
        assert!(out.batch_sizes.iter().all(|&b| b == 1));
        let q = out.recorder.queue_summary().unwrap();
        assert!(q.max < 1e-12, "idle server should start batches instantly, got {}", q.max);
    }

    #[test]
    fn saturating_load_forms_full_batches() {
        let m = ServiceModel::hep();
        // Offer ~3× the batch-32 saturated rate: the queue stays deep and
        // the vast majority of batches reach max_batch.
        let rate = 3.0 * m.saturated_rate(32);
        let arrivals: Vec<f64> = PoissonArrivals::new(11, rate, 600).collect();
        let mut cfg = dyn_cfg(32, 10);
        cfg.queue_capacity = 64;
        let out = simulate(&m, &arrivals, &cfg);
        assert!(out.rejected > 0, "overload must shed load");
        let full = out.batch_sizes.iter().filter(|&&b| b == 32).count();
        assert!(
            full * 2 > out.batch_sizes.len(),
            "most batches should be full: {full}/{}",
            out.batch_sizes.len()
        );
        // Dynamic batching at saturation clears ≥2× what batch-1 can.
        let out1 = simulate(&m, &arrivals, &{
            let mut c = dyn_cfg(1, 0);
            c.queue_capacity = 64;
            c
        });
        assert!(out.throughput() >= 2.0 * out1.throughput());
    }

    #[test]
    fn deadline_caps_queue_wait_when_pool_is_idle() {
        let m = ServiceModel::hep();
        // Two requests 1 ms apart, max_batch 32, 5 ms deadline: the
        // batch fires at t0 + 5 ms with both aboard.
        let arrivals = vec![0.0, 0.001];
        let out = simulate(&m, &arrivals, &dyn_cfg(32, 5));
        assert_eq!(out.batch_sizes, vec![2]);
        let q = out.recorder.queue_summary().unwrap();
        assert!((q.max - 0.005).abs() < 1e-12, "head waited {}", q.max);
    }

    #[test]
    fn rejected_plus_served_partition_all_arrivals() {
        let m = ServiceModel::hep();
        let rate = 4.0 * m.saturated_rate(8);
        let arrivals: Vec<f64> = PoissonArrivals::new(13, rate, 300).collect();
        let mut cfg = dyn_cfg(8, 2);
        cfg.queue_capacity = 16;
        let out = simulate(&m, &arrivals, &cfg);
        let mut all: Vec<usize> =
            out.served_ids.iter().chain(&out.rejected_ids).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..arrivals.len()).collect::<Vec<_>>());
        assert_eq!(out.completed + out.rejected, arrivals.len());
        assert_eq!(out.recorder.len(), out.completed);
    }

    #[test]
    fn multiple_workers_increase_throughput() {
        let m = ServiceModel::hep();
        let rate = 6.0 * m.saturated_rate(32);
        let arrivals: Vec<f64> = PoissonArrivals::new(17, rate, 800).collect();
        let mut one = dyn_cfg(32, 10);
        one.queue_capacity = 512;
        let mut two = one.clone();
        two.workers = 2;
        let t1 = simulate(&m, &arrivals, &one).throughput();
        let t2 = simulate(&m, &arrivals, &two).throughput();
        assert!(t2 > 1.5 * t1, "2 workers: {t2:.0}/s vs 1 worker: {t1:.0}/s");
    }

    #[test]
    fn worker_crash_requeues_and_every_request_resolves() {
        let m = ServiceModel::hep();
        let rate = 1.2 * m.saturated_rate(8);
        let arrivals: Vec<f64> = PoissonArrivals::new(23, rate, 200).collect();
        let mut cfg = dyn_cfg(8, 5);
        cfg.faults = FaultPlan::none().with_worker_crash(0, 2, 0.05);
        let out = simulate(&m, &arrivals, &cfg);
        assert_eq!(out.crashes, 1);
        assert!(out.requeued > 0, "the crashed batch must be recovered");
        assert_eq!(out.lost, 0, "one crash cannot exhaust the re-queue budget");
        // Exactly-once accounting: every arrival has one terminal
        // outcome even under the crash.
        assert_eq!(out.offered(), arrivals.len());
        assert_eq!(out.recorder.len(), out.completed);
    }

    #[test]
    fn repeated_crashes_past_requeue_budget_lose_requests() {
        let m = ServiceModel::hep();
        let arrivals: Vec<f64> = (0..4).map(|i| i as f64 * 1e-4).collect();
        let mut cfg = dyn_cfg(4, 1);
        cfg.max_requeues = 1;
        // Two crashes on slot 0 with an instant respawn: the same batch
        // dies twice, exceeding the single-re-queue budget.
        cfg.faults =
            FaultPlan::none().with_worker_crash(0, 0, 0.0).with_worker_crash(0, 0, 0.0);
        let out = simulate(&m, &arrivals, &cfg);
        assert_eq!(out.crashes, 2);
        assert_eq!(out.lost, 4, "the twice-crashed batch is abandoned");
        assert_eq!(out.completed, 0);
        assert_eq!(out.offered(), arrivals.len());
    }

    #[test]
    fn slow_worker_stretches_its_batches() {
        let m = ServiceModel::hep();
        let arrivals: Vec<f64> = (0..6).map(|i| i as f64 * 1e-5).collect();
        let clean = simulate(&m, &arrivals, &dyn_cfg(2, 0));
        let mut cfg = dyn_cfg(2, 0);
        cfg.faults = FaultPlan::none().with_slow_worker(0, 0, 100, 5.0);
        let slow = simulate(&m, &arrivals, &cfg);
        assert_eq!(slow.completed, clean.completed);
        assert!(
            slow.makespan > 4.0 * clean.makespan,
            "5× straggler: {} vs {}",
            slow.makespan,
            clean.makespan
        );
    }

    #[test]
    fn deadlines_shed_stale_requests_before_compute() {
        let m = ServiceModel::hep();
        let svc1 = m.batch_secs(1);
        // Burst of 6 at t=0, batch-1 service: the pool serves them one
        // at a time, so late positions blow a 2.5-service deadline.
        let arrivals = vec![0.0; 6];
        let mut cfg = dyn_cfg(1, 0);
        cfg.deadline_secs = Some(2.5 * svc1);
        let out = simulate(&m, &arrivals, &cfg);
        assert!(out.expired > 0, "tail of the burst must expire");
        assert_eq!(out.completed + out.expired, 6);
        // Expired requests never entered a batch.
        assert_eq!(out.recorder.len(), out.completed);
        assert_eq!(out.batch_sizes.len(), out.completed);
    }

    #[test]
    fn watermark_sheds_earlier_than_capacity() {
        let m = ServiceModel::hep();
        let arrivals = vec![0.0; 10];
        let mut deep = dyn_cfg(32, 50);
        deep.queue_capacity = 16;
        let mut shallow = deep.clone();
        shallow.shed_watermark = Some(4);
        let a = simulate(&m, &arrivals, &deep);
        let b = simulate(&m, &arrivals, &shallow);
        assert_eq!(a.rejected, 0);
        assert_eq!(b.rejected, 6, "watermark 4 admits only the first 4 of the burst");
    }

    #[test]
    fn corrupt_swap_schedule_trips_the_breaker() {
        let m = ServiceModel::hep();
        let arrivals: Vec<f64> = (0..4).map(|i| i as f64 * 0.01).collect();
        let mut cfg = dyn_cfg(4, 1);
        cfg.breaker_threshold = 2;
        cfg.swap_schedule = vec![0.01, 0.02, 0.03, 0.04];
        cfg.faults = FaultPlan::none().with_corrupt_swap(0).with_corrupt_swap(1);
        let out = simulate(&m, &arrivals, &cfg);
        // Attempts 0 and 1 are corrupt → breaker opens; attempts at
        // 0.03/0.04 fail fast without consuming an ordinal.
        assert_eq!(out.swap_attempts, 2);
        assert_eq!(out.swap_rejects, 4);
        assert_eq!(out.swap_published, 0);
        assert!(out.breaker_opened);
        assert_eq!(out.completed, 4, "serving continues on the old model throughout");
    }

    /// Satellite regression (sim mirror of the registry tests): a
    /// breaker reset closes the breaker and restarts the streak — a
    /// fresh failure streak reopens it — and a published (successful)
    /// swap fully clears the consecutive-failure count.
    #[test]
    fn breaker_reset_and_success_semantics_replay_in_virtual_time() {
        let m = ServiceModel::hep();
        let arrivals: Vec<f64> = (0..4).map(|i| i as f64 * 0.01).collect();

        // Corrupt attempts 0,1 open (threshold 2); reset at 0.025; then
        // corrupt attempts 2,3 — a fresh streak — must reopen.
        let mut cfg = dyn_cfg(4, 1);
        cfg.breaker_threshold = 2;
        cfg.swap_schedule = vec![0.01, 0.02, 0.03, 0.04];
        cfg.breaker_resets = vec![0.025];
        cfg.faults = FaultPlan::none()
            .with_corrupt_swap(0)
            .with_corrupt_swap(1)
            .with_corrupt_swap(2)
            .with_corrupt_swap(3);
        let out = simulate(&m, &arrivals, &cfg);
        assert_eq!(out.swap_attempts, 4, "reset closes the breaker: attempts 2,3 reach validation");
        assert_eq!(out.swap_rejects, 4);
        assert_eq!(out.swap_published, 0);
        assert!(out.breaker_opened, "the fresh post-reset streak reopens the breaker");

        // Success clears the streak: corrupt 0,1 with a healthy attempt
        // between them (threshold 2) never opens — mirroring
        // `successful_guarded_swap_clears_failure_streak`.
        let mut cfg2 = dyn_cfg(4, 1);
        cfg2.breaker_threshold = 2;
        cfg2.swap_schedule = vec![0.01, 0.02, 0.03];
        cfg2.faults = FaultPlan::none().with_corrupt_swap(0).with_corrupt_swap(2);
        let out2 = simulate(&m, &arrivals, &cfg2);
        assert_eq!(out2.swap_attempts, 3);
        assert_eq!(out2.swap_published, 1);
        assert_eq!(out2.swap_rejects, 2);
        assert!(!out2.breaker_opened, "the published swap resets the streak");
    }

    #[test]
    fn chaos_run_is_bit_deterministic() {
        let m = ServiceModel::hep();
        let rate = 1.5 * m.saturated_rate(8);
        let arrivals: Vec<f64> = PoissonArrivals::new(29, rate, 300).collect();
        let mut cfg = dyn_cfg(8, 5);
        cfg.workers = 2;
        cfg.deadline_secs = Some(0.5);
        cfg.shed_watermark = Some(128);
        cfg.swap_schedule = vec![0.1, 0.2];
        cfg.faults = scidl_core::faults::serving_chaos();
        let a = simulate(&m, &arrivals, &cfg);
        let b = simulate(&m, &arrivals, &cfg);
        assert_eq!(a.served_ids, b.served_ids);
        assert_eq!(a.expired_ids, b.expired_ids);
        assert_eq!(a.lost_ids, b.lost_ids);
        assert_eq!(a.batch_sizes, b.batch_sizes);
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        assert_eq!(a.crashes, b.crashes);
    }
}
