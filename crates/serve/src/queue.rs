//! The dynamic batcher: a bounded request queue plus a deadline-driven
//! batch former, with the admission-control and recovery hooks the
//! resilient serving tier is built on.
//!
//! The core serving problem on KNL-class hardware is the small-batch
//! efficiency cliff (Sec. II-A / Fig. 5 of the paper): a batch-1 forward
//! pass achieves a fraction of the throughput of a batch-32 pass. The
//! batch former therefore coalesces queued requests until either
//! `max_batch` requests are waiting or the *oldest* request has waited
//! `max_delay` — bounding added latency while letting throughput ride the
//! batch-efficiency curve.
//!
//! Backpressure is open-loop friendly: `submit` never blocks. Admission
//! is rejected with a typed [`SubmitError`] in two cases, and the
//! request is handed back to the caller either way:
//!
//! * [`SubmitError::Full`] — the queue depth reached the *shed
//!   watermark* (≤ capacity). Shedding early keeps the tail latency of
//!   accepted work bounded; the error carries the depth so callers can
//!   derive a retry-after hint.
//! * [`SubmitError::Closed`] — the queue was closed; nothing submitted
//!   after `close()` is ever enqueued, so no request can sit in a queue
//!   no consumer will drain.
//!
//! Requests may carry a *deadline* ([`BatchQueue::submit_with_deadline`]).
//! The batch former sheds expired requests **before** compute: they are
//! returned to the consumer in [`Popped::expired`] so it can give each a
//! terminal answer instead of burning batch slots on work nobody is
//! waiting for.
//!
//! Two recovery hooks serve the worker supervisor:
//! [`BatchQueue::requeue_front`] puts a dead worker's in-flight requests
//! back at the head of the line (capacity- and close-exempt — they were
//! already admitted once), and [`BatchQueue::drain_all`] empties the
//! queue when no consumer remains so every leftover request can be
//! failed instead of stranded.
//!
//! Built directly on `std::sync::{Mutex, Condvar}` because the batch
//! former needs `wait_timeout` for the deadline path.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Batch-formation policy: coalesce up to `max_batch` requests, but never
/// hold the oldest request longer than `max_delay`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Largest batch the former will assemble.
    pub max_batch: usize,
    /// Longest the oldest queued request may wait for co-batching.
    pub max_delay: Duration,
}

impl BatchPolicy {
    /// Dynamic batching: up to `max_batch`, deadline `max_delay`.
    pub fn dynamic(max_batch: usize, max_delay: Duration) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        Self { max_batch, max_delay }
    }

    /// The baseline policy: every request is its own batch.
    pub fn batch1() -> Self {
        Self { max_batch: 1, max_delay: Duration::ZERO }
    }
}

/// Why [`BatchQueue::submit`] rejected a request; the request itself is
/// handed back in either variant.
#[derive(Debug)]
pub enum SubmitError<T> {
    /// The queue depth reached the shed watermark (or capacity). `depth`
    /// is the number of requests that were waiting at rejection time —
    /// the raw material for a retry-after hint.
    Full {
        /// The rejected request, handed back.
        item: T,
        /// Queue depth observed at rejection.
        depth: usize,
    },
    /// The queue was closed; nothing is enqueued after `close()`.
    Closed(T),
}

impl<T> SubmitError<T> {
    /// The rejected request, regardless of variant.
    pub fn into_item(self) -> T {
        match self {
            SubmitError::Full { item, .. } | SubmitError::Closed(item) => item,
        }
    }
}

/// One queued request with its arrival timestamp (for the queue-wait
/// component of the latency split) and optional absolute deadline.
struct Pending<T> {
    item: T,
    arrived: Instant,
    deadline: Option<Instant>,
}

/// What one [`BatchQueue::pop_expiring`] call produced: a (possibly
/// empty) batch ready for compute, plus every request whose deadline
/// passed while it waited. Expired requests are surfaced *before* the
/// compute they would otherwise ride, so the consumer can shed them with
/// a typed terminal answer.
pub struct Popped<T> {
    /// Requests to serve, paired with their queue wait. May be empty
    /// when the call only harvested expired requests.
    pub batch: Vec<(T, Duration)>,
    /// Requests whose deadline expired in the queue.
    pub expired: Vec<T>,
}

struct Inner<T> {
    items: VecDeque<Pending<T>>,
    closed: bool,
}

/// Bounded MPMC request queue with batch-forming consumers, watermark
/// load shedding and deadline expiry.
pub struct BatchQueue<T> {
    inner: Mutex<Inner<T>>,
    notify: Condvar,
    capacity: usize,
    watermark: usize,
}

impl<T> BatchQueue<T> {
    /// Creates a queue admitting at most `capacity` waiting requests
    /// (the shed watermark equals the capacity).
    pub fn new(capacity: usize) -> Self {
        Self::with_watermark(capacity, capacity)
    }

    /// Creates a queue that physically holds up to `capacity` requests
    /// but starts shedding new submissions once `watermark` are waiting.
    /// A watermark below capacity leaves headroom for re-queued
    /// in-flight requests recovered from dead workers.
    pub fn with_watermark(capacity: usize, watermark: usize) -> Self {
        assert!(capacity >= 1, "capacity must be at least 1");
        assert!(
            (1..=capacity).contains(&watermark),
            "watermark must be in 1..=capacity, got {watermark} with capacity {capacity}"
        );
        Self {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            notify: Condvar::new(),
            capacity,
            watermark,
        }
    }

    /// Physical bound on waiting requests (re-queues may exceed the
    /// watermark up to roughly this).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues a request without blocking; equivalent to
    /// [`BatchQueue::submit_with_deadline`] with no deadline.
    pub fn submit(&self, item: T) -> Result<(), SubmitError<T>> {
        self.submit_with_deadline(item, None)
    }

    /// Enqueues a request without blocking. Rejects with
    /// [`SubmitError::Closed`] after `close()` and with
    /// [`SubmitError::Full`] once the shed watermark is reached. A
    /// request with a `deadline` that passes while queued is shed by the
    /// batch former before compute (see [`Popped::expired`]).
    pub fn submit_with_deadline(
        &self,
        item: T,
        deadline: Option<Instant>,
    ) -> Result<(), SubmitError<T>> {
        let mut g = self.inner.lock().unwrap();
        if g.closed {
            return Err(SubmitError::Closed(item));
        }
        if g.items.len() >= self.watermark {
            let depth = g.items.len();
            return Err(SubmitError::Full { item, depth });
        }
        g.items.push_back(Pending { item, arrived: Instant::now(), deadline });
        drop(g);
        // One item can satisfy one consumer: `notify_one` avoids a
        // thundering herd of the whole worker pool per submit. Waiters
        // re-evaluate in `pop_expiring`'s loop (and park with a
        // deadline), so an absorbed wake cannot strand a request;
        // `close` still uses `notify_all` so every consumer observes
        // end-of-stream.
        self.notify.notify_one();
        Ok(())
    }

    /// Puts recovered in-flight requests back at the *head* of the line,
    /// in order (`items[0]` will be popped first). Exempt from both the
    /// watermark and the closed flag: these requests were admitted once
    /// already, and after `close()` consumers still drain what remains.
    /// Each item carries its (possibly already expired) deadline so the
    /// expiry path still applies; arrival is reset to now, so the queue
    /// wait of a retried request counts from its re-queue.
    pub fn requeue_front(&self, items: Vec<(T, Option<Instant>)>) {
        if items.is_empty() {
            return;
        }
        let now = Instant::now();
        let mut g = self.inner.lock().unwrap();
        for (item, deadline) in items.into_iter().rev() {
            g.items.push_front(Pending { item, arrived: now, deadline });
        }
        drop(g);
        // Several consumers may be parked and several items arrived.
        self.notify.notify_all();
    }

    /// Empties the queue immediately, returning every waiting request.
    /// The supervisor's last resort: when no worker remains to consume,
    /// each drained request gets failed explicitly instead of sitting in
    /// a queue forever.
    pub fn drain_all(&self) -> Vec<T> {
        let mut g = self.inner.lock().unwrap();
        g.items.drain(..).map(|p| p.item).collect()
    }

    /// Number of requests currently waiting.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// True when no requests are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once [`BatchQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }

    /// Closes the queue: subsequent `submit`s are rejected; consumers
    /// drain what remains and then observe end-of-stream.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.notify.notify_all();
    }

    /// Blocks until a batch can be formed under `policy` *or* a queued
    /// request's deadline expires, returning both the ready batch and
    /// the expired requests. Returns `None` once the queue is closed
    /// *and* drained.
    ///
    /// Formation rule: dispatch as soon as `max_batch` live requests
    /// wait, or when the oldest has waited `max_delay` (then take
    /// whatever is present). Close flushes immediately. Expired requests
    /// never enter a batch — they are shed the moment any consumer
    /// observes them, waking early if needed, and returned in
    /// [`Popped::expired`] (possibly with an empty batch) so the caller
    /// answers them before any compute.
    pub fn pop_expiring(&self, policy: &BatchPolicy) -> Option<Popped<T>> {
        let mut g = self.inner.lock().unwrap();
        loop {
            // One timestamp per former pass: expiry, batch readiness,
            // queue-wait accounting and the park decision all observe
            // the same `now`, so a single request can never straddle two
            // clock reads and be both shed as expired *and* batched (or
            // double-counted) within one tick.
            let now = Instant::now();
            let expired = Self::extract_expired(&mut g, now);
            let batch_ready = !g.items.is_empty()
                && (g.items.len() >= policy.max_batch
                    || g.closed
                    || now >= g.items[0].arrived + policy.max_delay);
            if batch_ready {
                return Some(Popped { batch: Self::drain(&mut g, policy.max_batch, now), expired });
            }
            if !expired.is_empty() {
                // Shed promptly: don't hold the expired requests' typed
                // answers hostage to batch formation.
                return Some(Popped { batch: Vec::new(), expired });
            }
            if g.items.is_empty() {
                if g.closed {
                    return None;
                }
                g = self.notify.wait(g).unwrap();
                continue;
            }
            // Park until whichever fires first: the head's batch
            // deadline or the earliest request deadline in the queue.
            let mut wake = g.items[0].arrived + policy.max_delay;
            for p in &g.items {
                if let Some(d) = p.deadline {
                    wake = wake.min(d);
                }
            }
            if now >= wake {
                continue;
            }
            // Woken by a new arrival, close, or the timeout; the loop
            // re-evaluates everything, so spurious wakes and consumer
            // races are benign.
            (g, _) = self.notify.wait_timeout(g, wake - now).unwrap();
        }
    }

    /// Blocks until a batch forms, for queues whose producers never set
    /// deadlines. Panics if it encounters an expired request — such
    /// queues must be consumed through [`BatchQueue::pop_expiring`],
    /// which returns the expired requests for typed shedding.
    pub fn pop_batch(&self, policy: &BatchPolicy) -> Option<Vec<(T, Duration)>> {
        let popped = self.pop_expiring(policy)?;
        assert!(
            popped.expired.is_empty(),
            "pop_batch on a queue with deadline submissions — use pop_expiring"
        );
        Some(popped.batch)
    }

    fn extract_expired(g: &mut Inner<T>, now: Instant) -> Vec<T> {
        if g.items.iter().all(|p| p.deadline.is_none_or(|d| now < d)) {
            return Vec::new();
        }
        let mut expired = Vec::new();
        let mut keep = VecDeque::with_capacity(g.items.len());
        for p in g.items.drain(..) {
            match p.deadline {
                Some(d) if now >= d => expired.push(p.item),
                _ => keep.push_back(p),
            }
        }
        g.items = keep;
        expired
    }

    fn drain(g: &mut Inner<T>, max_batch: usize, now: Instant) -> Vec<(T, Duration)> {
        let k = g.items.len().min(max_batch);
        g.items
            .drain(..k)
            .map(|p| (p.item, now.saturating_duration_since(p.arrived)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_batch_dispatches_without_waiting_for_deadline() {
        let q = BatchQueue::new(16);
        for i in 0..4 {
            q.submit(i).unwrap();
        }
        let policy = BatchPolicy::dynamic(4, Duration::from_secs(3600));
        let t0 = Instant::now();
        let batch = q.pop_batch(&policy).unwrap();
        assert_eq!(batch.len(), 4);
        assert!(t0.elapsed() < Duration::from_secs(1), "must not wait for the deadline");
        let ids: Vec<i32> = batch.into_iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0, 1, 2, 3], "FIFO order");
    }

    #[test]
    fn deadline_flushes_partial_batch() {
        let q = BatchQueue::new(16);
        q.submit(7).unwrap();
        let policy = BatchPolicy::dynamic(8, Duration::from_millis(20));
        let t0 = Instant::now();
        let batch = q.pop_batch(&policy).unwrap();
        assert_eq!(batch.len(), 1);
        assert!(t0.elapsed() >= Duration::from_millis(15), "should wait out the deadline");
    }

    #[test]
    fn batch1_policy_never_coalesces() {
        let q = BatchQueue::new(16);
        q.submit(1).unwrap();
        q.submit(2).unwrap();
        let policy = BatchPolicy::batch1();
        assert_eq!(q.pop_batch(&policy).unwrap().len(), 1);
        assert_eq!(q.pop_batch(&policy).unwrap().len(), 1);
    }

    #[test]
    fn capacity_rejects_and_hands_back_with_depth() {
        let q = BatchQueue::new(2);
        q.submit(1).unwrap();
        q.submit(2).unwrap();
        match q.submit(3).unwrap_err() {
            SubmitError::Full { item, depth } => {
                assert_eq!(item, 3);
                assert_eq!(depth, 2);
            }
            e => panic!("expected Full, got {e:?}"),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn watermark_sheds_below_capacity() {
        let q = BatchQueue::with_watermark(8, 2);
        q.submit(1).unwrap();
        q.submit(2).unwrap();
        assert!(matches!(q.submit(3), Err(SubmitError::Full { depth: 2, .. })));
        // Requeue is watermark-exempt: recovered in-flight work still fits.
        q.requeue_front(vec![(9, None)]);
        assert_eq!(q.len(), 3);
    }

    /// Regression (resilience satellite): nothing submitted after
    /// `close()` may ever be enqueued — a closed queue can have no
    /// consumers left, and a silently enqueued request would hang its
    /// client forever.
    #[test]
    fn submit_after_close_returns_closed_and_enqueues_nothing() {
        let q = BatchQueue::new(8);
        q.submit(1).unwrap();
        q.close();
        match q.submit(2).unwrap_err() {
            SubmitError::Closed(item) => assert_eq!(item, 2),
            e => panic!("expected Closed, got {e:?}"),
        }
        assert_eq!(q.len(), 1, "the rejected request must not be enqueued");
        assert!(q.is_closed());
        // Drain the survivor; the stream then ends — the closed-submit
        // request is not lurking behind it.
        let policy = BatchPolicy::dynamic(8, Duration::from_secs(3600));
        assert_eq!(q.pop_batch(&policy).unwrap().len(), 1);
        assert!(q.pop_batch(&policy).is_none());
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BatchQueue::new(8);
        q.submit(1).unwrap();
        q.submit(2).unwrap();
        q.close();
        assert!(q.submit(3).is_err(), "closed queue rejects");
        let policy = BatchPolicy::dynamic(8, Duration::from_secs(3600));
        // Close flushes immediately even though the batch is partial.
        assert_eq!(q.pop_batch(&policy).unwrap().len(), 2);
        assert!(q.pop_batch(&policy).is_none(), "drained + closed = end of stream");
    }

    #[test]
    fn expired_requests_are_shed_before_compute() {
        let q = BatchQueue::new(8);
        let now = Instant::now();
        q.submit_with_deadline(1, Some(now + Duration::from_millis(5))).unwrap();
        q.submit_with_deadline(2, Some(now + Duration::from_secs(3600))).unwrap();
        q.submit(3).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        // Request 1 expired while queued: it must come back via
        // `expired`, never inside the batch formed from the survivors.
        let popped = q.pop_expiring(&BatchPolicy::dynamic(2, Duration::from_secs(3600))).unwrap();
        assert_eq!(popped.expired, vec![1]);
        let ids: Vec<i32> = popped.batch.into_iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn expiry_wakes_a_parked_consumer_promptly() {
        let q = Arc::new(BatchQueue::new(8));
        q.submit_with_deadline(7, Some(Instant::now() + Duration::from_millis(20))).unwrap();
        // Batch former alone would park for the full hour-long max_delay;
        // the request's own deadline must wake it in ~20 ms.
        let t0 = Instant::now();
        let popped = q.pop_expiring(&BatchPolicy::dynamic(8, Duration::from_secs(3600))).unwrap();
        assert!(popped.batch.is_empty());
        assert_eq!(popped.expired, vec![7]);
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "expiry must not wait for the batch deadline: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn requeue_front_preserves_order_and_beats_the_line() {
        let q = BatchQueue::new(8);
        q.submit(10).unwrap();
        q.requeue_front(vec![(1, None), (2, None)]);
        let policy = BatchPolicy::dynamic(3, Duration::ZERO);
        let ids: Vec<i32> =
            q.pop_batch(&policy).unwrap().into_iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![1, 2, 10], "requeued requests are served first, in order");
    }

    #[test]
    fn requeue_front_works_after_close_so_recovery_can_drain() {
        let q = BatchQueue::new(4);
        q.close();
        q.requeue_front(vec![(5, None)]);
        assert_eq!(q.len(), 1);
        let policy = BatchPolicy::batch1();
        assert_eq!(q.pop_batch(&policy).unwrap()[0].0, 5);
        assert!(q.pop_batch(&policy).is_none());
    }

    #[test]
    fn drain_all_empties_the_queue() {
        let q = BatchQueue::new(8);
        q.submit(1).unwrap();
        q.submit_with_deadline(2, Some(Instant::now() + Duration::from_secs(1))).unwrap();
        assert_eq!(q.drain_all(), vec![1, 2]);
        assert!(q.is_empty());
        assert_eq!(q.drain_all(), Vec::<i32>::new());
    }

    #[test]
    fn producer_wakes_blocked_consumer() {
        let q = Arc::new(BatchQueue::new(8));
        let qc = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            qc.pop_batch(&BatchPolicy::dynamic(2, Duration::from_millis(50)))
        });
        std::thread::sleep(Duration::from_millis(10));
        q.submit(41).unwrap();
        q.submit(42).unwrap();
        let batch = consumer.join().unwrap().unwrap();
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn multi_consumer_exactly_once_fifo() {
        // Four consumers race on one queue while a producer trickles in
        // requests; with `notify_one` in `submit` every request must
        // still be dispatched exactly once, each batch internally FIFO,
        // and all consumers must terminate once the queue closes.
        const N: usize = 400;
        const CONSUMERS: usize = 4;
        let q = Arc::new(BatchQueue::new(N));
        let policy = BatchPolicy::dynamic(8, Duration::from_millis(2));
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let qc = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut batches: Vec<Vec<usize>> = Vec::new();
                    while let Some(batch) = qc.pop_batch(&policy) {
                        batches.push(batch.into_iter().map(|(i, _)| i).collect());
                    }
                    batches
                })
            })
            .collect();
        for i in 0..N {
            q.submit(i).unwrap();
            if i % 16 == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        q.close();
        let mut all: Vec<usize> = Vec::new();
        for c in consumers {
            for batch in c.join().unwrap() {
                assert!(
                    batch.windows(2).all(|w| w[0] < w[1]),
                    "batch must preserve FIFO order: {batch:?}"
                );
                all.extend(batch);
            }
        }
        all.sort_unstable();
        let expect: Vec<usize> = (0..N).collect();
        assert_eq!(all, expect, "every request exactly once, none lost to a missed wakeup");
    }

    /// Regression (fleet satellite): the batch former takes exactly one
    /// timestamp per pass, so every popped request lands in *either*
    /// `expired` or `batch`, never both and never neither — even when
    /// deadlines race the pop. Hammers the boundary with deadlines that
    /// straddle "now" and checks the dispositions partition the ids.
    #[test]
    fn one_timestamp_per_pass_partitions_dispositions() {
        let policy = BatchPolicy::dynamic(64, Duration::ZERO);
        for round in 0..200u64 {
            let q = BatchQueue::new(64);
            let now = Instant::now();
            for i in 0..8u64 {
                let id = round * 8 + i;
                // Deadlines from "already expired" through "a few µs out":
                // some will flip to expired between submit and pop.
                let d = now + Duration::from_micros(i * 3);
                q.submit_with_deadline(id, Some(d)).unwrap();
            }
            let mut seen: Vec<u64> = Vec::new();
            while !q.is_empty() {
                let popped = q.pop_expiring(&policy).unwrap();
                seen.extend(popped.expired.iter().copied());
                seen.extend(popped.batch.iter().map(|(id, _)| *id));
            }
            seen.sort_unstable();
            let expect: Vec<u64> = (round * 8..round * 8 + 8).collect();
            assert_eq!(seen, expect, "each request exactly one disposition");
        }
    }

    #[test]
    fn queue_wait_is_recorded() {
        let q = BatchQueue::new(8);
        q.submit(1).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let batch = q.pop_batch(&BatchPolicy::batch1()).unwrap();
        assert!(batch[0].1 >= Duration::from_millis(5), "wait {:?}", batch[0].1);
    }
}
