//! The dynamic batcher: a bounded request queue plus a deadline-driven
//! batch former.
//!
//! The core serving problem on KNL-class hardware is the small-batch
//! efficiency cliff (Sec. II-A / Fig. 5 of the paper): a batch-1 forward
//! pass achieves a fraction of the throughput of a batch-32 pass. The
//! batch former therefore coalesces queued requests until either
//! `max_batch` requests are waiting or the *oldest* request has waited
//! `max_delay` — bounding added latency while letting throughput ride the
//! batch-efficiency curve.
//!
//! Backpressure is open-loop friendly: `submit` never blocks. When the
//! queue holds `capacity` requests the submission is rejected and the
//! request handed back to the caller ([`QueueFull`]), which is the
//! load-shedding behaviour an overloaded serving tier wants (reject
//! early, keep tail latency of accepted work bounded).
//!
//! Built directly on `std::sync::{Mutex, Condvar}` because the batch
//! former needs `wait_timeout` for the deadline path.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Batch-formation policy: coalesce up to `max_batch` requests, but never
/// hold the oldest request longer than `max_delay`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Largest batch the former will assemble.
    pub max_batch: usize,
    /// Longest the oldest queued request may wait for co-batching.
    pub max_delay: Duration,
}

impl BatchPolicy {
    /// Dynamic batching: up to `max_batch`, deadline `max_delay`.
    pub fn dynamic(max_batch: usize, max_delay: Duration) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        Self { max_batch, max_delay }
    }

    /// The baseline policy: every request is its own batch.
    pub fn batch1() -> Self {
        Self { max_batch: 1, max_delay: Duration::ZERO }
    }
}

/// Error returned by [`BatchQueue::submit`] when the queue is at
/// capacity (or closed); the rejected request is handed back.
#[derive(Debug)]
pub struct QueueFull<T>(pub T);

/// One queued request with its arrival timestamp (for the queue-wait
/// component of the latency split).
struct Pending<T> {
    item: T,
    arrived: Instant,
}

struct Inner<T> {
    items: VecDeque<Pending<T>>,
    closed: bool,
}

/// Bounded MPMC request queue with batch-forming consumers.
pub struct BatchQueue<T> {
    inner: Mutex<Inner<T>>,
    notify: Condvar,
    capacity: usize,
}

impl<T> BatchQueue<T> {
    /// Creates a queue admitting at most `capacity` waiting requests.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "capacity must be at least 1");
        Self {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            notify: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues a request without blocking. Returns it in [`QueueFull`]
    /// when the queue is at capacity or already closed.
    pub fn submit(&self, item: T) -> Result<(), QueueFull<T>> {
        let mut g = self.inner.lock().unwrap();
        if g.closed || g.items.len() >= self.capacity {
            return Err(QueueFull(item));
        }
        g.items.push_back(Pending { item, arrived: Instant::now() });
        drop(g);
        // One item can satisfy one consumer: `notify_one` avoids a
        // thundering herd of the whole worker pool per submit. Waiters
        // re-evaluate in `pop_batch`'s loop (and park with a deadline),
        // so an absorbed wake cannot strand a request; `close` still
        // uses `notify_all` so every consumer observes end-of-stream.
        self.notify.notify_one();
        Ok(())
    }

    /// Number of requests currently waiting.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// True when no requests are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: subsequent `submit`s are rejected; consumers
    /// drain what remains and then observe end-of-stream.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.notify.notify_all();
    }

    /// Blocks until a batch can be formed under `policy`, returning the
    /// requests paired with their queue wait. Returns `None` once the
    /// queue is closed *and* drained.
    ///
    /// Formation rule: dispatch as soon as `max_batch` requests wait, or
    /// when the oldest request has waited `max_delay` (then take whatever
    /// is present). Close flushes immediately.
    pub fn pop_batch(&self, policy: &BatchPolicy) -> Option<Vec<(T, Duration)>> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if g.items.is_empty() {
                if g.closed {
                    return None;
                }
                g = self.notify.wait(g).unwrap();
                continue;
            }
            if g.items.len() >= policy.max_batch || g.closed {
                return Some(Self::drain(&mut g, policy.max_batch));
            }
            let deadline = g.items[0].arrived + policy.max_delay;
            let now = Instant::now();
            if now >= deadline {
                return Some(Self::drain(&mut g, policy.max_batch));
            }
            // Woken by a new arrival, close, or the deadline; the loop
            // re-evaluates all three conditions, so spurious wakes and
            // consumer races are benign.
            (g, _) = self.notify.wait_timeout(g, deadline - now).unwrap();
        }
    }

    fn drain(g: &mut Inner<T>, max_batch: usize) -> Vec<(T, Duration)> {
        let k = g.items.len().min(max_batch);
        let now = Instant::now();
        g.items
            .drain(..k)
            .map(|p| (p.item, now.saturating_duration_since(p.arrived)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_batch_dispatches_without_waiting_for_deadline() {
        let q = BatchQueue::new(16);
        for i in 0..4 {
            q.submit(i).unwrap();
        }
        let policy = BatchPolicy::dynamic(4, Duration::from_secs(3600));
        let t0 = Instant::now();
        let batch = q.pop_batch(&policy).unwrap();
        assert_eq!(batch.len(), 4);
        assert!(t0.elapsed() < Duration::from_secs(1), "must not wait for the deadline");
        let ids: Vec<i32> = batch.into_iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0, 1, 2, 3], "FIFO order");
    }

    #[test]
    fn deadline_flushes_partial_batch() {
        let q = BatchQueue::new(16);
        q.submit(7).unwrap();
        let policy = BatchPolicy::dynamic(8, Duration::from_millis(20));
        let t0 = Instant::now();
        let batch = q.pop_batch(&policy).unwrap();
        assert_eq!(batch.len(), 1);
        assert!(t0.elapsed() >= Duration::from_millis(15), "should wait out the deadline");
    }

    #[test]
    fn batch1_policy_never_coalesces() {
        let q = BatchQueue::new(16);
        q.submit(1).unwrap();
        q.submit(2).unwrap();
        let policy = BatchPolicy::batch1();
        assert_eq!(q.pop_batch(&policy).unwrap().len(), 1);
        assert_eq!(q.pop_batch(&policy).unwrap().len(), 1);
    }

    #[test]
    fn capacity_rejects_and_hands_back() {
        let q = BatchQueue::new(2);
        q.submit(1).unwrap();
        q.submit(2).unwrap();
        let QueueFull(rejected) = q.submit(3).unwrap_err();
        assert_eq!(rejected, 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BatchQueue::new(8);
        q.submit(1).unwrap();
        q.submit(2).unwrap();
        q.close();
        assert!(q.submit(3).is_err(), "closed queue rejects");
        let policy = BatchPolicy::dynamic(8, Duration::from_secs(3600));
        // Close flushes immediately even though the batch is partial.
        assert_eq!(q.pop_batch(&policy).unwrap().len(), 2);
        assert!(q.pop_batch(&policy).is_none(), "drained + closed = end of stream");
    }

    #[test]
    fn producer_wakes_blocked_consumer() {
        let q = Arc::new(BatchQueue::new(8));
        let qc = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            qc.pop_batch(&BatchPolicy::dynamic(2, Duration::from_millis(50)))
        });
        std::thread::sleep(Duration::from_millis(10));
        q.submit(41).unwrap();
        q.submit(42).unwrap();
        let batch = consumer.join().unwrap().unwrap();
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn multi_consumer_exactly_once_fifo() {
        // Four consumers race on one queue while a producer trickles in
        // requests; with `notify_one` in `submit` every request must
        // still be dispatched exactly once, each batch internally FIFO,
        // and all consumers must terminate once the queue closes.
        const N: usize = 400;
        const CONSUMERS: usize = 4;
        let q = Arc::new(BatchQueue::new(N));
        let policy = BatchPolicy::dynamic(8, Duration::from_millis(2));
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let qc = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut batches: Vec<Vec<usize>> = Vec::new();
                    while let Some(batch) = qc.pop_batch(&policy) {
                        batches.push(batch.into_iter().map(|(i, _)| i).collect());
                    }
                    batches
                })
            })
            .collect();
        for i in 0..N {
            q.submit(i).unwrap();
            if i % 16 == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        q.close();
        let mut all: Vec<usize> = Vec::new();
        for c in consumers {
            for batch in c.join().unwrap() {
                assert!(
                    batch.windows(2).all(|w| w[0] < w[1]),
                    "batch must preserve FIFO order: {batch:?}"
                );
                all.extend(batch);
            }
        }
        all.sort_unstable();
        let expect: Vec<usize> = (0..N).collect();
        assert_eq!(all, expect, "every request exactly once, none lost to a missed wakeup");
    }

    #[test]
    fn queue_wait_is_recorded() {
        let q = BatchQueue::new(8);
        q.submit(1).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let batch = q.pop_batch(&BatchPolicy::batch1()).unwrap();
        assert!(batch[0].1 >= Duration::from_millis(5), "wait {:?}", batch[0].1);
    }
}
