//! Property-based tests for the cluster simulator: event-calendar
//! ordering, cost-model monotonicity and simulation invariants under
//! arbitrary configurations.

use proptest::prelude::*;
use scidl_cluster::event::EventQueue;
use scidl_cluster::knl::{KnlModel, LayerCost, RateClass};
use scidl_cluster::sim::{ClusterSim, SimConfig, Workload};
use scidl_cluster::AriesModel;

fn toy_workload(flops_gf: u64) -> Workload {
    Workload {
        name: "toy".into(),
        layers: vec![
            LayerCost {
                name: "conv".into(),
                train_flops_per_image: flops_gf * 1_000_000_000,
                class: RateClass::Conv { cin: 64 },
            },
            LayerCost {
                name: "relu".into(),
                train_flops_per_image: 1_000_000,
                class: RateClass::MemoryBound { bytes_per_image: 10_000_000 },
            },
        ],
        params: 500_000,
        model_bytes: 2_000_000,
        image_bytes: 500_000,
        io_bw: 3.0e9,
        solver_flops_per_param: 6,
        solver_bytes_per_param: 12.0,
        solver_bw: 2.0e9,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Events pop in nondecreasing time order regardless of insertion
    /// order.
    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0.0f64..1000.0, 1..50)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut last = f64::NEG_INFINITY;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// The conv rate model is monotone in both channels and batch and
    /// never exceeds the hardware peak.
    #[test]
    fn knl_rates_monotone_and_bounded(
        cin in 1usize..2048,
        batch in 1usize..512,
    ) {
        let m = KnlModel::default();
        let r = m.conv_rate(cin, batch);
        prop_assert!(r > 0.0 && r < m.peak_flops);
        prop_assert!(m.conv_rate(cin + 1, batch) >= r);
        prop_assert!(m.conv_rate(cin, batch + 1) >= r);
    }

    /// All-reduce cost grows with message size and never becomes
    /// negative; broadcast is cheaper than all-reduce for large payloads.
    #[test]
    fn aries_costs_behave(nodes in 2usize..4096, kb in 1u64..100_000) {
        let m = AriesModel::default();
        let bytes = kb * 1024;
        let t = m.allreduce_time(nodes, bytes);
        prop_assert!(t > 0.0);
        prop_assert!(m.allreduce_time(nodes, bytes * 2) > t);
        prop_assert!(m.broadcast_time(nodes, bytes) <= t + 1e-12);
    }

    /// A simulation always completes the requested iterations (absent
    /// failures), processes the matching image count, and reports
    /// non-negative times.
    #[test]
    fn sim_completes_all_iterations(
        nodes_pow in 0u32..8,
        groups_pow in 0u32..3,
        iterations in 2usize..12,
        seed in any::<u64>(),
    ) {
        let nodes = 1usize << nodes_pow;
        let groups = (1usize << groups_pow).min(nodes);
        let mut cfg = SimConfig::new(toy_workload(2), nodes, groups, 64.max(nodes));
        cfg.iterations = iterations;
        cfg.seed = seed;
        cfg.jitter.fail_rate_per_node_hour = 0.0; // no failures
        let r = ClusterSim::new(cfg.clone()).run();
        let expect_iters = groups * iterations;
        let done: usize = r.iter_times.iter().map(|v| v.len()).sum();
        prop_assert_eq!(done, expect_iters);
        prop_assert_eq!(r.images, (expect_iters * cfg.batch_per_group) as u64);
        prop_assert!(r.total_time > 0.0);
        prop_assert!(r.iter_times.iter().flatten().all(|&t| t > 0.0));
        prop_assert!(r.peak_rate >= r.sustained_rate * 0.99);
    }

    /// Bit-identical determinism for any seed.
    #[test]
    fn sim_is_deterministic(seed in any::<u64>()) {
        let mut cfg = SimConfig::new(toy_workload(1), 16, 2, 64);
        cfg.iterations = 5;
        cfg.seed = seed;
        let a = ClusterSim::new(cfg.clone()).run();
        let b = ClusterSim::new(cfg).run();
        prop_assert_eq!(a.total_time, b.total_time);
        prop_assert_eq!(a.iter_times, b.iter_times);
    }

    /// Timeline invariants: per group, iteration intervals are disjoint
    /// and time-ordered; every interval has positive length.
    #[test]
    fn timeline_intervals_are_disjoint_per_group(
        groups in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut cfg = SimConfig::new(toy_workload(1), 8.max(groups), groups, 32);
        cfg.iterations = 6;
        cfg.seed = seed;
        cfg.jitter.fail_rate_per_node_hour = 0.0;
        let r = ClusterSim::new(cfg).run();
        for g in 0..groups {
            let mut intervals: Vec<(f64, f64)> = r
                .timeline
                .iter()
                .filter(|(gg, _, _)| *gg == g)
                .map(|&(_, s, e)| (s, e))
                .collect();
            intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            prop_assert_eq!(intervals.len(), 6);
            for w in intervals.windows(2) {
                prop_assert!(w[0].1 <= w[1].0 + 1e-12, "intervals overlap: {w:?}");
            }
            prop_assert!(intervals.iter().all(|&(s, e)| e > s));
        }
    }

    /// Synchronous runs never report staleness; hybrid runs with G>=2
    /// always do (in an ideal machine, steady state interleaves).
    #[test]
    fn staleness_semantics(groups in 1usize..5, seed in any::<u64>()) {
        let mut cfg = SimConfig::new(toy_workload(1), 16, groups, 64).ideal();
        cfg.iterations = 12;
        cfg.seed = seed;
        let r = ClusterSim::new(cfg).run();
        if groups == 1 {
            prop_assert_eq!(r.mean_staleness, 0.0);
        } else {
            prop_assert!(r.mean_staleness > 0.0);
        }
    }
}
