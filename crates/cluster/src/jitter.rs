//! Run-to-run variability and failure injection.
//!
//! Sec. VIII-A: "at a scale of thousands of nodes, we found significant
//! variability in runtimes across runs, which could be as high as 30%"
//! and "the probability of one of the thousands of nodes failing or
//! degrading during the run is non-zero". Sec. VI-B2 attributes HEP's
//! sublinear weak scaling to jitter on ~12 ms layer times, while the
//! climate network's ~300 ms layers are barely affected — so the
//! straggler component must be an *absolute* delay (OS noise bursts,
//! network hotspots are milliseconds regardless of the layer being run),
//! on top of a small multiplicative lognormal spread. The PS exchange
//! path crosses the interconnect twice and is "more affected by this
//! variability" (Sec. VI-B2), modelled by per-request delay spikes.

use scidl_tensor::TensorRng;

/// Variability model parameters.
#[derive(Clone, Debug)]
pub struct JitterModel {
    /// Sigma of the lognormal multiplicative compute jitter.
    pub sigma: f64,
    /// Probability that a node suffers a straggler event in an iteration.
    pub straggler_prob: f64,
    /// Mean of the exponential *absolute* straggler delay (seconds).
    pub straggler_mean_delay: f64,
    /// Probability that one PS request suffers a delay spike.
    pub ps_straggler_prob: f64,
    /// Mean of the exponential PS delay spike (seconds).
    pub ps_straggler_mean_delay: f64,
    /// Poisson node-failure rate per node-hour.
    pub fail_rate_per_node_hour: f64,
}

impl Default for JitterModel {
    fn default() -> Self {
        Self {
            sigma: 0.04,
            straggler_prob: 0.0008,
            straggler_mean_delay: 0.020,
            ps_straggler_prob: 0.08,
            ps_straggler_mean_delay: 0.025,
            fail_rate_per_node_hour: 2.0e-4,
        }
    }
}

impl JitterModel {
    /// No jitter, no stragglers, no failures (ideal machine).
    pub fn none() -> Self {
        Self {
            sigma: 0.0,
            straggler_prob: 0.0,
            straggler_mean_delay: 0.0,
            ps_straggler_prob: 0.0,
            ps_straggler_mean_delay: 0.0,
            fail_rate_per_node_hour: 0.0,
        }
    }

    /// Multiplicative compute-time factor for one node-iteration
    /// (lognormal with mean ≈ 1).
    pub fn compute_multiplier(&self, rng: &mut TensorRng) -> f64 {
        if self.sigma > 0.0 {
            rng.lognormal(-0.5 * self.sigma * self.sigma, self.sigma)
        } else {
            1.0
        }
    }

    /// The *maximum* lognormal multiplier over `nodes` draws — what a
    /// synchronisation barrier pays (Sec. II-B1b).
    pub fn barrier_multiplier(&self, rng: &mut TensorRng, nodes: usize) -> f64 {
        if self.sigma == 0.0 {
            return 1.0;
        }
        let mut worst: f64 = 0.0;
        for _ in 0..nodes.max(1) {
            worst = worst.max(self.compute_multiplier(rng));
        }
        worst.max(1.0)
    }

    /// Maximum absolute straggler delay over `nodes` draws (seconds) —
    /// added once to a barriered iteration. Milliseconds-scale, so it
    /// dominates HEP's short iterations but not climate's long ones.
    pub fn barrier_delay(&self, rng: &mut TensorRng, nodes: usize) -> f64 {
        if self.straggler_prob <= 0.0 {
            return 0.0;
        }
        // Number of stragglers among the nodes is Binomial(n, p); sample
        // via Poisson approximation and take the max of that many
        // exponential delays.
        let lambda = self.straggler_prob * nodes as f64;
        let k = rng.poisson(lambda);
        let mut worst = 0.0f64;
        for _ in 0..k {
            let d = -self.straggler_mean_delay * rng.uniform().max(1e-18).ln();
            worst = worst.max(d);
        }
        worst
    }

    /// Delay spike on one parameter-server request (seconds; usually 0).
    pub fn ps_request_delay(&self, rng: &mut TensorRng) -> f64 {
        if self.ps_straggler_prob > 0.0 && rng.bernoulli(self.ps_straggler_prob) {
            -self.ps_straggler_mean_delay * rng.uniform().max(1e-18).ln()
        } else {
            0.0
        }
    }

    /// Samples the first failure time (seconds) among `nodes` nodes over
    /// a `horizon_secs` window, if any.
    pub fn first_failure(&self, rng: &mut TensorRng, nodes: usize, horizon_secs: f64) -> Option<f64> {
        if self.fail_rate_per_node_hour <= 0.0 || nodes == 0 {
            return None;
        }
        let rate_per_sec = self.fail_rate_per_node_hour * nodes as f64 / 3600.0;
        let t = -rng.uniform().max(1e-18).ln() / rate_per_sec;
        (t < horizon_secs).then_some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_deterministic_unity() {
        let m = JitterModel::none();
        let mut rng = TensorRng::new(1);
        for _ in 0..100 {
            assert_eq!(m.compute_multiplier(&mut rng), 1.0);
        }
        assert_eq!(m.barrier_multiplier(&mut rng, 1000), 1.0);
        assert_eq!(m.barrier_delay(&mut rng, 1000), 0.0);
        assert_eq!(m.ps_request_delay(&mut rng), 0.0);
        assert!(m.first_failure(&mut rng, 10_000, 1e9).is_none());
    }

    #[test]
    fn lognormal_jitter_has_unit_mean() {
        let m = JitterModel::default();
        let mut rng = TensorRng::new(2);
        let n = 20_000;
        let mean = (0..n).map(|_| m.compute_multiplier(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn barrier_multiplier_grows_with_node_count() {
        let m = JitterModel::default();
        let mut rng = TensorRng::new(3);
        let avg = |nodes: usize, rng: &mut TensorRng| {
            (0..60).map(|_| m.barrier_multiplier(rng, nodes)).sum::<f64>() / 60.0
        };
        let m8 = avg(8, &mut rng);
        let m2048 = avg(2048, &mut rng);
        assert!(
            m2048 > m8 + 0.02,
            "barrier penalty should grow with scale: {m8} → {m2048}"
        );
        // ~30% worst-case variability (Sec. VIII-A), not orders of
        // magnitude.
        assert!(m2048 < 1.45, "barrier multiplier too heavy: {m2048}");
    }

    #[test]
    fn barrier_delay_is_absolute_and_scale_dependent() {
        let m = JitterModel::default();
        let mut rng = TensorRng::new(4);
        let avg = |nodes: usize, rng: &mut TensorRng| {
            (0..400).map(|_| m.barrier_delay(rng, nodes)).sum::<f64>() / 400.0
        };
        let d64 = avg(64, &mut rng);
        let d2048 = avg(2048, &mut rng);
        assert!(d2048 > d64, "{d64} vs {d2048}");
        // Milliseconds at full scale: large next to HEP's ~12 ms layers,
        // negligible next to climate's ~300 ms layers.
        assert!((0.005..0.08).contains(&d2048), "delay {d2048}");
    }

    #[test]
    fn ps_delays_are_occasional_spikes() {
        let m = JitterModel::default();
        let mut rng = TensorRng::new(5);
        let n = 10_000;
        let delays: Vec<f64> = (0..n).map(|_| m.ps_request_delay(&mut rng)).collect();
        let nonzero = delays.iter().filter(|&&d| d > 0.0).count();
        let frac = nonzero as f64 / n as f64;
        assert!((frac - m.ps_straggler_prob).abs() < 0.02, "spike rate {frac}");
        let mean_spike: f64 =
            delays.iter().filter(|&&d| d > 0.0).sum::<f64>() / nonzero.max(1) as f64;
        assert!((mean_spike - m.ps_straggler_mean_delay).abs() < 0.01);
    }

    #[test]
    fn failures_scale_with_nodes_and_horizon() {
        let m = JitterModel { fail_rate_per_node_hour: 0.01, ..JitterModel::default() };
        let mut rng = TensorRng::new(5);
        let p_small = (0..300)
            .filter(|_| m.first_failure(&mut rng, 10, 3600.0).is_some())
            .count();
        let p_large = (0..300)
            .filter(|_| m.first_failure(&mut rng, 10_000, 3600.0).is_some())
            .count();
        assert!(p_large > p_small, "{p_small} vs {p_large}");
        assert!(p_large > 290);
    }

    #[test]
    fn failure_times_within_horizon() {
        let m = JitterModel { fail_rate_per_node_hour: 1.0, ..JitterModel::default() };
        let mut rng = TensorRng::new(6);
        for _ in 0..100 {
            if let Some(t) = m.first_failure(&mut rng, 100, 50.0) {
                assert!((0.0..50.0).contains(&t));
            }
        }
    }
}
