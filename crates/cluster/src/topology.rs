//! Dragonfly topology and compute-group placement (Fig. 3).
//!
//! Cori's Aries interconnect is a dragonfly: nodes attach to routers,
//! routers form all-to-all *electrical groups* (two cabinets each), and
//! groups connect through optical global links. Fig. 3 shows the paper's
//! ideal placement — compute groups laid out so intra-group all-reduce
//! traffic stays inside electrical groups, with parameter servers
//! reachable over the global links. This module models that: placements
//! map compute-group members to electrical groups, and the collective
//! cost model charges extra latency and shared-bandwidth contention for
//! traffic that crosses group boundaries.

use crate::aries::AriesModel;
use scidl_tensor::TensorRng;

/// Static dragonfly dimensions.
#[derive(Clone, Copy, Debug)]
pub struct Dragonfly {
    /// Nodes per electrical group (Cori: 384 — two cabinets).
    pub nodes_per_group: usize,
    /// Extra one-way latency of a global (optical, inter-group) hop.
    pub global_hop_latency: f64,
    /// Bandwidth de-rating per additional electrical group spanned by a
    /// collective (global links are shared).
    pub global_contention: f64,
}

impl Default for Dragonfly {
    fn default() -> Self {
        Self {
            nodes_per_group: 384,
            global_hop_latency: 1.5e-6,
            global_contention: 0.04,
        }
    }
}

/// An assignment of compute nodes to electrical groups.
#[derive(Clone, Debug)]
pub struct Placement {
    /// `electrical_group[i]` for each node `i` of the compute group.
    pub electrical_group: Vec<usize>,
}

impl Placement {
    /// The ideal Fig. 3 placement: nodes packed contiguously so a compute
    /// group spans the minimum number of electrical groups.
    pub fn contiguous(nodes: usize, fly: &Dragonfly) -> Self {
        Self {
            electrical_group: (0..nodes).map(|i| i / fly.nodes_per_group).collect(),
        }
    }

    /// A scattered placement: nodes land in random electrical groups of a
    /// machine with `machine_nodes` total nodes (what a busy scheduler
    /// without topology awareness produces).
    pub fn scattered(nodes: usize, machine_nodes: usize, fly: &Dragonfly, seed: u64) -> Self {
        let mut rng = TensorRng::new(seed ^ 0xD4A);
        let machine_groups = machine_nodes.div_ceil(fly.nodes_per_group).max(1);
        Self {
            electrical_group: (0..nodes).map(|_| rng.below(machine_groups)).collect(),
        }
    }

    /// Number of distinct electrical groups this compute group spans.
    pub fn groups_spanned(&self) -> usize {
        let mut seen: Vec<usize> = self.electrical_group.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Fraction of ring-neighbour pairs whose link crosses an electrical
    /// group boundary (the traffic that uses global links in a ring
    /// all-reduce).
    pub fn boundary_fraction(&self) -> f64 {
        let n = self.electrical_group.len();
        if n <= 1 {
            return 0.0;
        }
        let crossings = (0..n)
            .filter(|&i| self.electrical_group[i] != self.electrical_group[(i + 1) % n])
            .count();
        crossings as f64 / n as f64
    }
}

/// Placement-aware all-reduce time: the base [`AriesModel`] cost plus
/// global-hop latency on the crossing steps and contention de-rating of
/// the bandwidth term when the collective spans many electrical groups.
pub fn allreduce_time_placed(
    net: &AriesModel,
    fly: &Dragonfly,
    placement: &Placement,
    bytes: u64,
) -> f64 {
    let nodes = placement.electrical_group.len();
    if nodes <= 1 {
        return 0.0;
    }
    let base = net.allreduce_time(nodes, bytes);
    let spanned = placement.groups_spanned();
    let crossing = placement.boundary_fraction();
    // Latency: each of the 2(n-1) ring steps that crosses a boundary pays
    // the optical hop; we charge the average over the pipeline depth.
    let steps = 2.0 * (nodes as f64 - 1.0);
    let lat_extra = steps * crossing * fly.global_hop_latency;
    // Bandwidth: global links shared between the spanned groups.
    let bw_derate = 1.0 + fly.global_contention * (spanned.saturating_sub(1)) as f64;
    base * bw_derate + lat_extra
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_spans_minimum_groups() {
        let fly = Dragonfly::default();
        let p = Placement::contiguous(1000, &fly);
        assert_eq!(p.groups_spanned(), 3); // ceil(1000/384)
        // Only 2 internal boundaries + the ring wrap cross groups.
        assert!(p.boundary_fraction() < 0.01);
    }

    #[test]
    fn scattered_spans_many_groups() {
        let fly = Dragonfly::default();
        let p = Placement::scattered(1000, 9688, &fly, 7);
        assert!(p.groups_spanned() > 10);
        assert!(p.boundary_fraction() > 0.5);
    }

    #[test]
    fn contiguous_beats_scattered_allreduce() {
        let fly = Dragonfly::default();
        let net = AriesModel::default();
        let bytes = 2_411_724; // HEP model
        let good = allreduce_time_placed(&net, &fly, &Placement::contiguous(1024, &fly), bytes);
        let bad = allreduce_time_placed(
            &net,
            &fly,
            &Placement::scattered(1024, 9688, &fly, 3),
            bytes,
        );
        assert!(
            bad > good * 1.2,
            "scattered placement should cost noticeably more: {good} vs {bad}"
        );
    }

    #[test]
    fn single_node_is_free() {
        let fly = Dragonfly::default();
        let net = AriesModel::default();
        assert_eq!(
            allreduce_time_placed(&net, &fly, &Placement::contiguous(1, &fly), 1 << 20),
            0.0
        );
    }

    #[test]
    fn within_one_group_matches_base_model() {
        let fly = Dragonfly::default();
        let net = AriesModel::default();
        let p = Placement::contiguous(128, &fly);
        assert_eq!(p.groups_spanned(), 1);
        let placed = allreduce_time_placed(&net, &fly, &p, 1 << 20);
        let base = net.allreduce_time(128, 1 << 20);
        assert!((placed - base).abs() < 1e-12);
    }

    #[test]
    fn scattered_is_deterministic_per_seed() {
        let fly = Dragonfly::default();
        let a = Placement::scattered(100, 9688, &fly, 5);
        let b = Placement::scattered(100, 9688, &fly, 5);
        assert_eq!(a.electrical_group, b.electrical_group);
        let c = Placement::scattered(100, 9688, &fly, 6);
        assert_ne!(a.electrical_group, c.electrical_group);
    }
}
