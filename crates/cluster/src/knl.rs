//! Performance model of one Cori Phase II node — an Intel Xeon Phi 7250
//! (Knights Landing): 68 cores at 1.4 GHz (1.2 GHz sustained AVX), two
//! 512-bit VPUs per core, 16 GiB MCDRAM at ~400+ GB/s (Sec. IV).
//!
//! The model follows the paper's empirical observations rather than a
//! cycle-accurate simulation:
//!
//! * convolution kernels reach a channel-dependent fraction of peak —
//!   ≈3.5 TF/s for many-channel layers, ≈1.25 TF/s for the few-channel
//!   initial layers (Sec. VI-A / Fig. 5),
//! * efficiency collapses at small minibatches, the DeepBench effect the
//!   paper highlights (Sec. II-A): we use a saturating `b/(b+b_half)`
//!   factor,
//! * activation layers (ReLU, pooling) are memory-bandwidth bound,
//! * the solver update is a slow, copy-dominated serial phase (12.5% of
//!   HEP runtime at batch 8, Sec. VI-A),
//! * per-layer framework dispatch overhead (IntelCaffe layer launch).

/// How a layer's execution rate is modelled.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RateClass {
    /// GEMM-lowered convolution/deconvolution with `cin` input channels
    /// (deconvs use the mirror conv's channel count).
    Conv {
        /// Input channels of the (mirror) convolution.
        cin: usize,
    },
    /// Bandwidth-bound elementwise/pooling layer touching roughly
    /// `bytes_per_image` of memory per image per pass.
    MemoryBound {
        /// Bytes moved per image (forward + backward combined).
        bytes_per_image: u64,
    },
    /// Small dense layer (latency-dominated).
    DenseSmall,
}

/// Cost description of one layer, produced from a real `scidl-nn` network
/// by `scidl-core::workloads`.
#[derive(Clone, Debug)]
pub struct LayerCost {
    /// Layer name (matches the nn layer).
    pub name: String,
    /// Training FLOPs (forward + backward) per image.
    pub train_flops_per_image: u64,
    /// Rate class for the time model.
    pub class: RateClass,
}

/// MCDRAM configuration of the node (Sec. IV): the 16 GiB on-package
/// memory can act as a cache on DDR4 (the mode the paper uses — "in this
/// publication we only consider quad mode" with MCDRAM as cache) or be
/// addressed directly as a flat NUMA node, which removes the cache-miss
/// overheads for bandwidth-bound layers at the cost of manual placement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum McdramMode {
    /// MCDRAM as a 16 GiB L3-like cache on DDR4 (quad-cache; default).
    Cache,
    /// MCDRAM as an explicitly-addressed NUMA node.
    Flat,
}

impl McdramMode {
    /// Effective bandwidth for the mode (B/s): flat mode avoids the
    /// cache tag/miss machinery and sustains closer to the stream peak.
    pub fn bandwidth(self) -> f64 {
        match self {
            McdramMode::Cache => 3.6e11,
            McdramMode::Flat => 4.4e11,
        }
    }
}

/// Calibrated KNL node model.
#[derive(Clone, Debug)]
pub struct KnlModel {
    /// Theoretical single-precision peak (Sec. IV: 6.09 TF/s per node).
    pub peak_flops: f64,
    /// Asymptotic conv rate for infinitely many channels (fraction of
    /// sustained peak; DeepBench reports 75–80% for the best kernels).
    pub conv_rmax: f64,
    /// Channel count at which conv efficiency reaches half of `conv_rmax`.
    pub conv_cin_half: f64,
    /// Minibatch at which the batch-efficiency factor reaches 1/2.
    pub batch_half: f64,
    /// Effective MCDRAM bandwidth for bandwidth-bound layers (B/s).
    pub mem_bw: f64,
    /// Fixed dispatch overhead per layer per iteration (seconds).
    pub layer_overhead: f64,
    /// Bytes touched per parameter by one solver update (weights,
    /// gradient, history copies).
    pub solver_bytes_per_param: f64,
    /// Effective bandwidth of the (poorly threaded) solver phase (B/s).
    pub solver_bw: f64,
}

impl Default for KnlModel {
    fn default() -> Self {
        Self {
            peak_flops: 6.09e12,
            conv_rmax: 4.68e12,
            conv_cin_half: 8.0,
            batch_half: 4.0,
            mem_bw: 3.6e11,
            layer_overhead: 1.5e-4,
            solver_bytes_per_param: 24.0,
            solver_bw: 1.6e9,
        }
    }
}

impl KnlModel {
    /// Reconfigures the memory-bandwidth model for an MCDRAM mode.
    pub fn with_mcdram(mut self, mode: McdramMode) -> Self {
        self.mem_bw = mode.bandwidth();
        self
    }

    /// Saturating small-batch efficiency factor in `(0, 1]`.
    #[inline]
    pub fn batch_factor(&self, batch: usize) -> f64 {
        let b = batch.max(1) as f64;
        b / (b + self.batch_half)
    }

    /// Achieved FLOP rate of a convolution with `cin` input channels at
    /// the given per-node minibatch.
    pub fn conv_rate(&self, cin: usize, batch: usize) -> f64 {
        let c = cin.max(1) as f64;
        self.conv_rmax * (c / (c + self.conv_cin_half)) * self.batch_factor(batch)
    }

    /// Seconds one layer takes for a whole minibatch.
    pub fn layer_time(&self, layer: &LayerCost, batch: usize) -> f64 {
        let images = batch.max(1) as f64;
        let t = match layer.class {
            RateClass::Conv { cin } => {
                images * layer.train_flops_per_image as f64 / self.conv_rate(cin, batch)
            }
            RateClass::MemoryBound { bytes_per_image } => {
                images * bytes_per_image as f64 / self.mem_bw
            }
            RateClass::DenseSmall => {
                // Latency-bound: flops negligible, a few microseconds.
                images * (layer.train_flops_per_image as f64 / self.peak_flops) + 5e-6
            }
        };
        t + self.layer_overhead
    }

    /// Compute time of one training iteration (all layers, no solver/IO).
    pub fn compute_time(&self, layers: &[LayerCost], batch: usize) -> f64 {
        layers.iter().map(|l| self.layer_time(l, batch)).sum()
    }

    /// Solver-update time per iteration (batch independent).
    pub fn solver_time(&self, params: u64) -> f64 {
        params as f64 * self.solver_bytes_per_param / self.solver_bw
    }

    /// Training FLOPs of one iteration over `layers` (excluding solver).
    pub fn iteration_flops(layers: &[LayerCost], batch: usize) -> f64 {
        layers
            .iter()
            .map(|l| l.train_flops_per_image as f64)
            .sum::<f64>()
            * batch.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(name: &str, cin: usize, gf: f64) -> LayerCost {
        LayerCost {
            name: name.into(),
            train_flops_per_image: (gf * 1e9) as u64,
            class: RateClass::Conv { cin },
        }
    }

    #[test]
    fn conv_rate_matches_paper_observations() {
        let m = KnlModel::default();
        // Sec. VI-A: initial few-channel layers ~1.25 TF/s, many-channel
        // layers ~3.5 TF/s at batch 8 (we calibrate the *overall* rates
        // exactly; per-class rates land in a band around the quotes).
        let few = m.conv_rate(3, 8);
        let many = m.conv_rate(128, 8);
        assert!((0.7e12..1.6e12).contains(&few), "few-channel rate {few:.3e}");
        assert!((2.7e12..3.9e12).contains(&many), "many-channel rate {many:.3e}");
    }

    #[test]
    fn batch_efficiency_collapses_at_small_minibatch() {
        let m = KnlModel::default();
        // DeepBench (Sec. II-A): "decreasing minibatch size results in
        // significant efficiency drops to as low as 20-30% [of peak] at
        // minibatch sizes of 4-16".
        let frac_of_peak_b4 = m.conv_rate(128, 4) / m.peak_flops;
        assert!((0.2..0.45).contains(&frac_of_peak_b4), "b=4 peak fraction {frac_of_peak_b4}");
        assert!(m.conv_rate(128, 1) < 0.4 * m.conv_rate(128, 64));
        assert!(m.conv_rate(128, 8) > 0.6 * m.conv_rate(128, 64));
        // Monotone in batch.
        let rates: Vec<f64> = [1, 2, 4, 8, 16, 32].iter().map(|&b| m.conv_rate(64, b)).collect();
        assert!(rates.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn rates_never_exceed_peak() {
        let m = KnlModel::default();
        for cin in [1, 3, 16, 128, 1024] {
            for b in [1, 8, 1024] {
                assert!(m.conv_rate(cin, b) < m.peak_flops);
            }
        }
    }

    #[test]
    fn layer_time_scales_linearly_in_flops() {
        let m = KnlModel::default();
        let a = conv("a", 128, 1.0);
        let b = conv("b", 128, 2.0);
        let ta = m.layer_time(&a, 8) - m.layer_overhead;
        let tb = m.layer_time(&b, 8) - m.layer_overhead;
        assert!((tb / ta - 2.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_layer_uses_bandwidth() {
        let m = KnlModel::default();
        let l = LayerCost {
            name: "relu".into(),
            train_flops_per_image: 1_000,
            class: RateClass::MemoryBound { bytes_per_image: 100_000_000 },
        };
        let t = m.layer_time(&l, 1) - m.layer_overhead;
        assert!((t - 1e8 / m.mem_bw).abs() < 1e-12);
    }

    #[test]
    fn solver_time_matches_bandwidth_model() {
        let m = KnlModel::default();
        let t = m.solver_time(594_178);
        // HEP solver: ~594k params × 24 B / 1.6 GB/s ≈ 8.9 ms — the order
        // of the paper's 12.5%-of-66ms ≈ 8.3 ms.
        assert!((0.005..0.012).contains(&t), "solver time {t}");
    }

    #[test]
    fn mcdram_flat_mode_speeds_bandwidth_bound_layers() {
        let cache = KnlModel::default().with_mcdram(McdramMode::Cache);
        let flat = KnlModel::default().with_mcdram(McdramMode::Flat);
        let relu = LayerCost {
            name: "relu".into(),
            train_flops_per_image: 1_000,
            class: RateClass::MemoryBound { bytes_per_image: 200_000_000 },
        };
        assert!(flat.layer_time(&relu, 8) < cache.layer_time(&relu, 8));
        // Conv layers are compute-bound: unchanged.
        let conv_l = LayerCost {
            name: "c".into(),
            train_flops_per_image: 1_000_000_000,
            class: RateClass::Conv { cin: 128 },
        };
        assert_eq!(flat.layer_time(&conv_l, 8), cache.layer_time(&conv_l, 8));
    }

    #[test]
    fn iteration_flops_sum_layers_times_batch() {
        let layers = vec![conv("a", 3, 1.0), conv("b", 128, 2.0)];
        assert_eq!(KnlModel::iteration_flops(&layers, 4), 4.0 * 3.0e9);
    }
}
