//! Cost model of the Cray Aries dragonfly interconnect (Sec. IV) and of
//! the MLSL-style communication primitives built on it (Sec. III-D/E).
//!
//! All-reduce follows the standard ring model (bandwidth term
//! `2·(n−1)/n · bytes/bw`) plus a logarithmic latency term; MLSL's
//! endpoint proxy threads improve effective bandwidth utilisation, which
//! is folded into `effective_bw`. Parameter-server exchanges are modelled
//! as point-to-point transfers plus a per-message software overhead.

/// Interconnect model parameters.
#[derive(Clone, Debug)]
pub struct AriesModel {
    /// One-way hardware + software latency per message (seconds).
    pub latency: f64,
    /// Per-node effective injection bandwidth with MLSL endpoints (B/s).
    pub effective_bw: f64,
    /// Additional per-hop latency multiplier applied `log2(n)` times in
    /// collectives.
    pub hop_latency: f64,
}

impl Default for AriesModel {
    fn default() -> Self {
        Self {
            latency: 6.0e-6,
            effective_bw: 9.0e9,
            hop_latency: 2.0e-6,
        }
    }
}

impl AriesModel {
    /// Time for an all-reduce of `bytes` across `nodes` ranks.
    pub fn allreduce_time(&self, nodes: usize, bytes: u64) -> f64 {
        if nodes <= 1 {
            return 0.0;
        }
        let n = nodes as f64;
        let steps = (nodes as f64).log2().ceil();
        let bw_term = 2.0 * (n - 1.0) / n * bytes as f64 / self.effective_bw;
        let lat_term = steps * (self.latency + self.hop_latency);
        bw_term + lat_term
    }

    /// Time to broadcast `bytes` from one rank to `nodes` ranks
    /// (binomial tree, pipelined).
    pub fn broadcast_time(&self, nodes: usize, bytes: u64) -> f64 {
        if nodes <= 1 {
            return 0.0;
        }
        let steps = (nodes as f64).log2().ceil();
        bytes as f64 / self.effective_bw + steps * (self.latency + self.hop_latency)
    }

    /// Point-to-point transfer of `bytes`.
    pub fn p2p_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.effective_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_collectives_are_free() {
        let m = AriesModel::default();
        assert_eq!(m.allreduce_time(1, 1 << 30), 0.0);
        assert_eq!(m.broadcast_time(1, 1 << 30), 0.0);
    }

    #[test]
    fn allreduce_bandwidth_term_saturates_with_nodes() {
        let m = AriesModel::default();
        let bytes = 300 * 1024 * 1024; // climate-sized model
        let t64 = m.allreduce_time(64, bytes);
        let t1024 = m.allreduce_time(1024, bytes);
        // Ring bandwidth term approaches 2·bytes/bw; only latency grows.
        assert!(t1024 > t64);
        assert!(t1024 < t64 * 1.2, "allreduce should be nearly node-count independent: {t64} vs {t1024}");
    }

    #[test]
    fn allreduce_scales_linearly_in_bytes_for_large_messages() {
        let m = AriesModel::default();
        let t1 = m.allreduce_time(256, 10_000_000);
        let t2 = m.allreduce_time(256, 20_000_000);
        assert!((t2 / t1 - 2.0).abs() < 0.05, "ratio {}", t2 / t1);
    }

    #[test]
    fn latency_dominates_small_messages_at_scale() {
        let m = AriesModel::default();
        // HEP's 2.3 MiB model at 2048 nodes: latency share grows with
        // node count — the jitter amplification mechanism of Sec. VI-B2.
        let small = m.allreduce_time(2048, 1024);
        let floor = (2048f64).log2().ceil() * (m.latency + m.hop_latency);
        assert!(small >= floor);
        assert!(small < floor + 1e-6);
    }

    #[test]
    fn hep_allreduce_in_expected_range() {
        let m = AriesModel::default();
        // 2.3 MiB over 1024 nodes: sub-millisecond — small next to the
        // ~12 ms/layer compute the paper quotes.
        let t = m.allreduce_time(1024, 2_411_724);
        assert!((1e-4..2e-3).contains(&t), "HEP allreduce {t}");
    }

    #[test]
    fn p2p_is_latency_plus_bandwidth() {
        let m = AriesModel::default();
        assert!((m.p2p_time(9_000_000_000) - (m.latency + 1.0)).abs() < 1e-9);
    }
}
