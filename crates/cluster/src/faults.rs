//! Declarative fault injection shared by both backends.
//!
//! Sec. VIII-A of the paper studies what failures do to each
//! configuration: a synchronous run dies with its first node, a hybrid
//! run only loses the affected group. A [`FaultPlan`] turns that study
//! into a first-class input: it describes *scheduled* group crashes, PS
//! crashes, stragglers and message delays, plus an optional recovery
//! policy, and both the thread engine (`scidl-core::thread_engine`) and
//! the discrete-event simulator ([`crate::sim`]) accept one and inject
//! the same scenario at their own timescales.
//!
//! Quantities come in engine-appropriate units: crash points and MTTR
//! are given both in iterations (thread engine) and seconds (simulator);
//! each backend reads the field it understands.

/// A compute group dying at a given iteration (its node is lost).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GroupCrash {
    /// Which group dies.
    pub group: usize,
    /// Iteration at which it dies (before doing the iteration's work).
    pub iteration: usize,
}

/// A single rank (node) of a compute group dying at a given iteration,
/// leaving the rest of its group running into dead ring channels. Only
/// meaningful for engines whose collectives can *detect* a missing peer
/// — the thread engine's bucketed-overlap ring surfaces it as a
/// `CommError` on every surviving rank of the group (Sec. VIII-A's
/// "synchronous run dies with its first node", observed rather than
/// assumed).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeCrash {
    /// Which group loses a node.
    pub group: usize,
    /// Rank within the group that dies.
    pub rank: usize,
    /// Iteration at which it dies (before doing the iteration's work).
    pub iteration: usize,
}

/// A parameter-server shard dying after serving some requests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PsCrash {
    /// Which PS shard (layer block) dies.
    pub shard: usize,
    /// The shard dies after this many successfully served requests.
    pub after_requests: u64,
    /// Simulator: wall-clock seconds to restart the shard from its
    /// snapshot. The thread engine's supervisor respawns threads in
    /// microseconds, so it ignores this.
    pub repair_secs: f64,
}

/// A group running slow for a window of iterations (degraded node,
/// OS jitter storm, thermal throttling).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Straggler {
    /// Which group is slow.
    pub group: usize,
    /// First affected iteration (inclusive).
    pub from_iter: usize,
    /// Last affected iteration (exclusive).
    pub to_iter: usize,
    /// Compute-time multiplier (`2.0` = twice as slow). Must be ≥ 1.
    pub factor: f64,
}

/// Extra latency injected in front of a group's PS exchange at one
/// iteration (congested link, adaptive-routing detour).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MessageDelay {
    /// Which group's exchange is delayed.
    pub group: usize,
    /// Iteration whose exchange is delayed.
    pub iteration: usize,
    /// Added latency in seconds (the thread engine sleeps this long,
    /// so keep it small — e.g. `0.002` — in thread-engine scenarios).
    pub secs: f64,
}

/// A serving worker dying after it has dispatched some batches. The
/// threaded server's supervisor catches the panic, re-queues the
/// worker's in-flight requests and respawns the slot with exponential
/// backoff; the virtual-time serving simulator charges `respawn_secs`
/// before the slot takes batches again.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkerCrash {
    /// Which serving worker slot dies.
    pub worker: usize,
    /// The worker dies mid-batch while dispatching its
    /// `after_batches`-th batch (0 = its very first).
    pub after_batches: u64,
    /// Simulator: virtual seconds before the slot serves again. The
    /// threaded supervisor respawns on its own backoff schedule, so it
    /// ignores this.
    pub respawn_secs: f64,
}

/// A serving worker running slow for a window of its batches (thermal
/// throttling, a noisy neighbour): the serving analogue of
/// [`Straggler`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SlowWorker {
    /// Which serving worker slot is slow.
    pub worker: usize,
    /// First affected batch of that worker (inclusive).
    pub from_batch: u64,
    /// Last affected batch (exclusive).
    pub to_batch: u64,
    /// Compute-time multiplier (`3.0` = three times as slow). Must be ≥ 1.
    pub factor: f64,
}

/// A hot-swap attempt delivering a corrupt checkpoint (bit rot, a torn
/// write from a crashed trainer, NaN-poisoned parameters). The registry
/// must reject it before publication; enough consecutive corrupt swaps
/// open the circuit breaker.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CorruptSwap {
    /// Index of the corrupt swap attempt (0 = the first swap of the run).
    pub swap: u64,
}

/// Recovery policy for crashed groups. Without one, a dead group stays
/// dead — the seed behaviour and the paper's baseline observation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Recovery {
    /// Thread engine: iterations a crashed group sits out before it
    /// re-fetches the model from the PS bank and resumes.
    pub mttr_iters: u64,
    /// Simulator: seconds between the crash and the group re-entering
    /// the event queue.
    pub mttr_secs: f64,
}

/// A complete fault-injection scenario.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Scheduled group deaths.
    pub group_crashes: Vec<GroupCrash>,
    /// Scheduled single-rank deaths (dead ring neighbour scenarios).
    pub node_crashes: Vec<NodeCrash>,
    /// Scheduled PS-shard deaths.
    pub ps_crashes: Vec<PsCrash>,
    /// Slow-group windows.
    pub stragglers: Vec<Straggler>,
    /// Per-exchange injected latencies.
    pub message_delays: Vec<MessageDelay>,
    /// Scheduled serving-worker deaths.
    pub worker_crashes: Vec<WorkerCrash>,
    /// Slow serving-worker windows.
    pub slow_workers: Vec<SlowWorker>,
    /// Hot-swap attempts that deliver a corrupt checkpoint.
    pub corrupt_swaps: Vec<CorruptSwap>,
    /// If set, crashed groups come back after the MTTR.
    pub recovery: Option<Recovery>,
}

impl FaultPlan {
    /// A plan injecting nothing — the fault-free baseline.
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a group crash (builder style).
    pub fn with_group_crash(mut self, group: usize, iteration: usize) -> Self {
        self.group_crashes.push(GroupCrash { group, iteration });
        self
    }

    /// Adds a single-rank crash (builder style).
    pub fn with_node_crash(mut self, group: usize, rank: usize, iteration: usize) -> Self {
        self.node_crashes.push(NodeCrash { group, rank, iteration });
        self
    }

    /// Adds a PS-shard crash (builder style).
    pub fn with_ps_crash(mut self, shard: usize, after_requests: u64, repair_secs: f64) -> Self {
        self.ps_crashes.push(PsCrash { shard, after_requests, repair_secs });
        self
    }

    /// Adds a straggler window (builder style).
    pub fn with_straggler(
        mut self,
        group: usize,
        from_iter: usize,
        to_iter: usize,
        factor: f64,
    ) -> Self {
        assert!(factor >= 1.0, "a straggler cannot be faster than healthy");
        assert!(from_iter <= to_iter);
        self.stragglers.push(Straggler { group, from_iter, to_iter, factor });
        self
    }

    /// Adds a one-off message delay (builder style).
    pub fn with_message_delay(mut self, group: usize, iteration: usize, secs: f64) -> Self {
        assert!(secs >= 0.0);
        self.message_delays.push(MessageDelay { group, iteration, secs });
        self
    }

    /// Adds a serving-worker crash (builder style).
    pub fn with_worker_crash(mut self, worker: usize, after_batches: u64, respawn_secs: f64) -> Self {
        assert!(respawn_secs >= 0.0);
        self.worker_crashes.push(WorkerCrash { worker, after_batches, respawn_secs });
        self
    }

    /// Adds a slow serving-worker window (builder style).
    pub fn with_slow_worker(
        mut self,
        worker: usize,
        from_batch: u64,
        to_batch: u64,
        factor: f64,
    ) -> Self {
        assert!(factor >= 1.0, "a slow worker cannot be faster than healthy");
        assert!(from_batch <= to_batch);
        self.slow_workers.push(SlowWorker { worker, from_batch, to_batch, factor });
        self
    }

    /// Marks the `swap`-th hot-swap attempt as delivering a corrupt
    /// checkpoint (builder style).
    pub fn with_corrupt_swap(mut self, swap: u64) -> Self {
        self.corrupt_swaps.push(CorruptSwap { swap });
        self
    }

    /// Enables group recovery with the given mean-time-to-repair.
    pub fn with_recovery(mut self, mttr_iters: u64, mttr_secs: f64) -> Self {
        self.recovery = Some(Recovery { mttr_iters, mttr_secs });
        self
    }

    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.group_crashes.is_empty()
            && self.node_crashes.is_empty()
            && self.ps_crashes.is_empty()
            && self.stragglers.is_empty()
            && self.message_delays.is_empty()
            && self.worker_crashes.is_empty()
            && self.slow_workers.is_empty()
            && self.corrupt_swaps.is_empty()
    }

    /// Iteration at which `group` is scheduled to crash, if any. With
    /// several crashes scheduled for one group the earliest wins.
    pub fn group_crash_at(&self, group: usize) -> Option<usize> {
        self.group_crashes
            .iter()
            .filter(|c| c.group == group)
            .map(|c| c.iteration)
            .min()
    }

    /// Iteration at which rank `rank` of `group` is scheduled to die,
    /// if any (earliest wins).
    pub fn node_crash_at(&self, group: usize, rank: usize) -> Option<usize> {
        self.node_crashes
            .iter()
            .filter(|c| c.group == group && c.rank == rank)
            .map(|c| c.iteration)
            .min()
    }

    /// Combined slow-down multiplier for `group` at `iteration`
    /// (overlapping windows multiply; `1.0` = healthy).
    pub fn straggler_factor(&self, group: usize, iteration: usize) -> f64 {
        self.stragglers
            .iter()
            .filter(|s| s.group == group && (s.from_iter..s.to_iter).contains(&iteration))
            .map(|s| s.factor)
            .product()
    }

    /// Total injected latency for `group`'s exchange at `iteration`.
    pub fn message_delay_secs(&self, group: usize, iteration: usize) -> f64 {
        self.message_delays
            .iter()
            .filter(|d| d.group == group && d.iteration == iteration)
            .map(|d| d.secs)
            .sum()
    }

    /// The scheduled crash for serving worker slot `worker`, if any
    /// (the one with the earliest `after_batches` wins).
    pub fn worker_crash_for(&self, worker: usize) -> Option<WorkerCrash> {
        self.worker_crashes
            .iter()
            .filter(|c| c.worker == worker)
            .min_by_key(|c| c.after_batches)
            .copied()
    }

    /// Combined compute slow-down for worker `worker`'s `batch`-th batch
    /// (overlapping windows multiply; `1.0` = healthy).
    pub fn slow_worker_factor(&self, worker: usize, batch: u64) -> f64 {
        self.slow_workers
            .iter()
            .filter(|s| s.worker == worker && (s.from_batch..s.to_batch).contains(&batch))
            .map(|s| s.factor)
            .product()
    }

    /// Whether the `swap`-th hot-swap attempt delivers a corrupt
    /// checkpoint.
    pub fn swap_is_corrupt(&self, swap: u64) -> bool {
        self.corrupt_swaps.iter().any(|c| c.swap == swap)
    }

    /// True when the plan contains any serving-tier event.
    pub fn has_serving_faults(&self) -> bool {
        !self.worker_crashes.is_empty()
            || !self.slow_workers.is_empty()
            || !self.corrupt_swaps.is_empty()
    }

    /// Slices a fleet-wide serving plan down to one replica's view.
    ///
    /// Fleet plans address serving workers by *global* index: replica
    /// `r` owns global workers `r*workers_per_replica ..
    /// (r+1)*workers_per_replica`. The returned plan re-indexes the
    /// crashes and slow windows that land in that range to the replica's
    /// *local* worker slots, so a per-replica `Server` (or simulated
    /// replica) consumes exactly its share of the chaos. Registry-level
    /// events (`corrupt_swaps`) and training events stay with the fleet
    /// plan — they are not per-replica — so they are dropped here.
    pub fn for_replica(&self, replica: usize, workers_per_replica: usize) -> FaultPlan {
        assert!(workers_per_replica >= 1, "a replica needs at least one worker");
        let lo = replica * workers_per_replica;
        let hi = lo + workers_per_replica;
        let mut p = FaultPlan::none();
        p.worker_crashes = self
            .worker_crashes
            .iter()
            .filter(|c| (lo..hi).contains(&c.worker))
            .map(|c| WorkerCrash { worker: c.worker - lo, ..*c })
            .collect();
        p.slow_workers = self
            .slow_workers
            .iter()
            .filter(|s| (lo..hi).contains(&s.worker))
            .map(|s| SlowWorker { worker: s.worker - lo, ..*s })
            .collect();
        p
    }

    /// The scheduled crash for PS `shard`, if any (earliest wins).
    pub fn ps_crash_for_shard(&self, shard: usize) -> Option<PsCrash> {
        self.ps_crashes
            .iter()
            .filter(|c| c.shard == shard)
            .min_by_key(|c| c.after_requests)
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.group_crash_at(0), None);
        assert_eq!(p.straggler_factor(0, 0), 1.0);
        assert_eq!(p.message_delay_secs(0, 0), 0.0);
        assert!(p.ps_crash_for_shard(0).is_none());
    }

    #[test]
    fn builders_accumulate() {
        let p = FaultPlan::none()
            .with_group_crash(1, 5)
            .with_group_crash(1, 3)
            .with_ps_crash(0, 10, 0.5)
            .with_straggler(2, 4, 8, 3.0)
            .with_message_delay(0, 6, 0.25)
            .with_recovery(2, 30.0);
        assert!(!p.is_empty());
        assert_eq!(p.group_crash_at(1), Some(3), "earliest crash wins");
        assert_eq!(p.group_crash_at(0), None);
        assert_eq!(p.ps_crash_for_shard(0).unwrap().after_requests, 10);
        assert_eq!(p.recovery.unwrap().mttr_iters, 2);
    }

    #[test]
    fn node_crashes_are_per_rank_and_earliest_wins() {
        let p = FaultPlan::none()
            .with_node_crash(0, 2, 7)
            .with_node_crash(0, 2, 4)
            .with_node_crash(1, 0, 9);
        assert!(!p.is_empty());
        assert_eq!(p.node_crash_at(0, 2), Some(4));
        assert_eq!(p.node_crash_at(0, 0), None, "other ranks unaffected");
        assert_eq!(p.node_crash_at(1, 0), Some(9));
        assert_eq!(p.node_crash_at(2, 2), None, "other groups unaffected");
    }

    #[test]
    fn straggler_windows_are_half_open_and_multiply() {
        let p = FaultPlan::none()
            .with_straggler(0, 2, 5, 2.0)
            .with_straggler(0, 4, 6, 1.5);
        assert_eq!(p.straggler_factor(0, 1), 1.0);
        assert_eq!(p.straggler_factor(0, 2), 2.0);
        assert_eq!(p.straggler_factor(0, 4), 3.0, "overlap multiplies");
        assert_eq!(p.straggler_factor(0, 5), 1.5, "to_iter is exclusive");
        assert_eq!(p.straggler_factor(1, 3), 1.0, "other groups unaffected");
    }

    #[test]
    fn serving_faults_accumulate_and_resolve() {
        let p = FaultPlan::none()
            .with_worker_crash(1, 5, 0.2)
            .with_worker_crash(1, 3, 0.1)
            .with_slow_worker(0, 2, 6, 3.0)
            .with_slow_worker(0, 4, 8, 1.5)
            .with_corrupt_swap(0)
            .with_corrupt_swap(2);
        assert!(!p.is_empty());
        assert!(p.has_serving_faults());
        assert_eq!(p.worker_crash_for(1).unwrap().after_batches, 3, "earliest wins");
        assert!(p.worker_crash_for(0).is_none());
        assert_eq!(p.slow_worker_factor(0, 1), 1.0);
        assert_eq!(p.slow_worker_factor(0, 5), 4.5, "overlap multiplies");
        assert_eq!(p.slow_worker_factor(0, 6), 1.5, "to_batch is exclusive");
        assert_eq!(p.slow_worker_factor(1, 3), 1.0, "other workers unaffected");
        assert!(p.swap_is_corrupt(0));
        assert!(!p.swap_is_corrupt(1));
        assert!(p.swap_is_corrupt(2));
        assert!(!FaultPlan::none().has_serving_faults());
        assert!(
            !FaultPlan::none().with_group_crash(0, 1).has_serving_faults(),
            "training faults are not serving faults"
        );
    }

    #[test]
    fn for_replica_slices_and_reindexes_serving_faults() {
        let p = FaultPlan::none()
            .with_worker_crash(0, 3, 0.05) // replica 0, local 0
            .with_worker_crash(3, 1, 0.10) // replica 1, local 1
            .with_slow_worker(2, 2, 6, 3.0) // replica 1, local 0
            .with_slow_worker(5, 0, 4, 2.0) // replica 2, local 1
            .with_corrupt_swap(0) // registry-level: stays with the fleet
            .with_group_crash(0, 1); // training event: not per-replica
        let r0 = p.for_replica(0, 2);
        assert_eq!(r0.worker_crashes, vec![WorkerCrash { worker: 0, after_batches: 3, respawn_secs: 0.05 }]);
        assert!(r0.slow_workers.is_empty());
        assert!(r0.corrupt_swaps.is_empty(), "swap faults are fleet-level");
        assert!(r0.group_crashes.is_empty(), "training faults dropped");
        let r1 = p.for_replica(1, 2);
        assert_eq!(r1.worker_crashes, vec![WorkerCrash { worker: 1, after_batches: 1, respawn_secs: 0.10 }]);
        assert_eq!(r1.slow_workers, vec![SlowWorker { worker: 0, from_batch: 2, to_batch: 6, factor: 3.0 }]);
        let r2 = p.for_replica(2, 2);
        assert_eq!(r2.slow_workers.len(), 1);
        assert_eq!(r2.slow_workers[0].worker, 1);
        assert!(p.for_replica(3, 2).is_empty(), "replicas past the plan see nothing");
    }

    #[test]
    fn message_delays_sum_per_iteration() {
        let p = FaultPlan::none()
            .with_message_delay(0, 3, 0.1)
            .with_message_delay(0, 3, 0.2);
        assert!((p.message_delay_secs(0, 3) - 0.3).abs() < 1e-12);
        assert_eq!(p.message_delay_secs(0, 4), 0.0);
    }
}
