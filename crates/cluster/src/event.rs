//! Generic discrete-event calendar.
//!
//! Simulated time is `f64` seconds. Events carry a payload type chosen by
//! the simulation; ties are broken by insertion order so runs are fully
//! deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated time in seconds.
pub type SimTime = f64;

struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap event queue over simulated time.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
    now: SimTime,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), seq: 0, now: 0.0 }
    }

    /// Current simulated time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at`. Panics when scheduling
    /// into the past (events must not violate causality).
    pub fn schedule(&mut self, at: SimTime, payload: T) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        assert!(at.is_finite(), "non-finite event time");
        self.heap.push(Entry { time: at, seq: self.seq, payload });
        self.seq += 1;
    }

    /// Schedules `payload` after a delay from now.
    pub fn schedule_in(&mut self, delay: SimTime, payload: T) {
        assert!(delay >= 0.0, "negative delay");
        self.schedule(self.now + delay, payload);
    }

    /// Pops the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| {
            self.now = e.time;
            (e.time, e.payload)
        })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(1.0, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 5.0);
        q.schedule_in(2.5, ());
        assert_eq!(q.pop(), Some((7.5, ())));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn rejects_causality_violation() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(4.0, ());
    }

    #[test]
    fn len_tracks_pending() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, ());
        q.schedule(2.0, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
