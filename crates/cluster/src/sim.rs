//! Iteration-level discrete-event simulation of distributed training on
//! Cori — regenerates the scaling studies (Figs. 6–7), the full-system
//! throughput numbers (Sec. VI-B3) and the simulated half of Fig. 5.
//!
//! Entities: `groups` compute groups iterating independently (a single
//! group = fully synchronous training), and a bank of per-layer parameter
//! servers that hybrid configurations exchange updates with. Within a
//! group, the cost of an iteration is:
//!
//! ```text
//! max-over-nodes(compute × jitter) + all-reduce(group) [+ PS exchange]
//! ```
//!
//! The PS exchange is a fork-join over the per-layer PS servers, each a
//! FIFO queue — saturation of a single PS under many groups is exactly
//! what Sec. III-E(c)'s per-layer PS design avoids, and what the
//! `ablation_ps` bench demonstrates.

use crate::aries::AriesModel;
use crate::event::EventQueue;
use crate::faults::FaultPlan;
use crate::jitter::JitterModel;
use crate::knl::{KnlModel, LayerCost};
use scidl_tensor::TensorRng;

/// Static cost description of a training workload (built from a real
/// `scidl-nn` network by `scidl-core::workloads`).
#[derive(Clone, Debug)]
pub struct Workload {
    /// Workload name ("hep", "climate").
    pub name: String,
    /// Per-layer cost table.
    pub layers: Vec<LayerCost>,
    /// Scalar parameter count.
    pub params: u64,
    /// Model size in bytes (what all-reduce and PS exchanges move).
    pub model_bytes: u64,
    /// Bytes of one input image.
    pub image_bytes: u64,
    /// Effective input-pipeline bandwidth per node (B/s). The paper's
    /// single-core HDF5 reader is slow; climate's 16-channel hyperslab
    /// reads are slower still (13% of runtime vs 2% for HEP, Sec. VI-A).
    pub io_bw: f64,
    /// Solver arithmetic per parameter (ADAM ≈ 12, SGD ≈ 6).
    pub solver_flops_per_param: u64,
    /// Bytes touched per parameter per solver update (ADAM's history
    /// copies are heavy; plain SGD-momentum is light).
    pub solver_bytes_per_param: f64,
    /// Effective bandwidth of the solver-update phase (B/s). The paper's
    /// HEP/ADAM update is a slow, copy-dominated serial phase (12.5% of
    /// runtime); the climate SGD update is well under 2%.
    pub solver_bw: f64,
}

impl Workload {
    /// Solver-update seconds for a shard of `params` parameters.
    pub fn solver_secs(&self, params: u64) -> f64 {
        params as f64 * self.solver_bytes_per_param / self.solver_bw
    }

    /// Training FLOPs per image (sum over layers).
    pub fn flops_per_image(&self) -> f64 {
        self.layers.iter().map(|l| l.train_flops_per_image as f64).sum()
    }

    /// Input-pipeline seconds for `batch` images on one node.
    pub fn io_time(&self, batch: usize) -> f64 {
        batch as f64 * self.image_bytes as f64 / self.io_bw
    }

    /// Single-node iteration time at minibatch `batch`: layers + solver
    /// update + input pipeline (Sec. VI-A's decomposition).
    pub fn node_iteration_time(&self, knl: &KnlModel, batch: usize) -> f64 {
        knl.compute_time(&self.layers, batch) + self.solver_secs(self.params) + self.io_time(batch)
    }

    /// Single-node achieved FLOP rate at minibatch `batch` — the Fig. 5
    /// headline numbers (HEP 1.90 TF/s, Climate 2.09 TF/s at batch 8).
    pub fn single_node_rate(&self, knl: &KnlModel, batch: usize) -> f64 {
        let flops = self.flops_per_image() * batch as f64
            + (self.params * self.solver_flops_per_param) as f64;
        flops / self.node_iteration_time(knl, batch)
    }
}

/// One entry of the simulated single-node profile (Fig. 5).
#[derive(Clone, Debug)]
pub struct ProfileEntry {
    /// Component name (layer name, "solver" or "io").
    pub name: String,
    /// Seconds per iteration.
    pub secs: f64,
    /// FLOPs per iteration (0 for non-arithmetic components).
    pub flops: f64,
}

/// Simulated per-component single-node profile at minibatch `batch`.
pub fn single_node_profile(w: &Workload, knl: &KnlModel, batch: usize) -> Vec<ProfileEntry> {
    let mut out: Vec<ProfileEntry> = w
        .layers
        .iter()
        .map(|l| ProfileEntry {
            name: l.name.clone(),
            secs: knl.layer_time(l, batch),
            flops: l.train_flops_per_image as f64 * batch as f64,
        })
        .collect();
    out.push(ProfileEntry {
        name: "solver".into(),
        secs: w.solver_secs(w.params),
        flops: (w.params * w.solver_flops_per_param) as f64,
    });
    out.push(ProfileEntry { name: "io".into(), secs: w.io_time(batch), flops: 0.0 });
    out
}

/// Configuration of one cluster simulation.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The workload.
    pub workload: Workload,
    /// Total compute nodes (parameter servers are extra).
    pub nodes: usize,
    /// Number of compute groups; 1 = fully synchronous.
    pub groups: usize,
    /// Global minibatch per group per update.
    pub batch_per_group: usize,
    /// Node model.
    pub knl: KnlModel,
    /// Interconnect model.
    pub net: AriesModel,
    /// Variability model.
    pub jitter: JitterModel,
    /// Iterations per group to simulate.
    pub iterations: usize,
    /// Snapshot the model every `checkpoint_every` iterations (0 = off).
    pub checkpoint_every: usize,
    /// Filesystem bandwidth for snapshots (B/s).
    pub fs_bw: f64,
    /// Parameter servers (hybrid only). 0 derives one per layer with
    /// parameters, capped at 16 (the paper uses 6 for HEP, 14 for
    /// climate).
    pub num_ps: usize,
    /// Overlap the all-reduce with backward compute, as MLSL's
    /// layer-wise communication does (Sec. III-D): the exposed
    /// communication time is what remains after hiding up to the
    /// backward half of the iteration.
    pub overlap_comm: bool,
    /// Scheduled fault injection (group/PS crashes, stragglers, delays)
    /// and the recovery policy (Sec. VIII-A). Random failures from
    /// [`JitterModel`] still apply on top.
    pub faults: FaultPlan,
    /// RNG seed.
    pub seed: u64,
}

impl SimConfig {
    /// A reasonable default configuration for `workload` on `nodes`
    /// nodes in `groups` groups.
    pub fn new(workload: Workload, nodes: usize, groups: usize, batch_per_group: usize) -> Self {
        Self {
            workload,
            nodes,
            groups,
            batch_per_group,
            knl: KnlModel::default(),
            net: AriesModel::default(),
            jitter: JitterModel::default(),
            iterations: 30,
            checkpoint_every: 0,
            fs_bw: 2.0e8,
            num_ps: 0,
            overlap_comm: false,
            faults: FaultPlan::none(),
            seed: 0xC0121,
        }
    }

    /// Disables all stochastic variability (for deterministic tests).
    pub fn ideal(mut self) -> Self {
        self.jitter = JitterModel::none();
        self
    }

    fn effective_num_ps(&self) -> usize {
        if self.num_ps > 0 {
            self.num_ps
        } else {
            // One per parameterised layer, capped: the paper dedicates 6
            // (HEP) / 14 (climate) PS nodes.
            self.workload
                .layers
                .iter()
                .filter(|l| matches!(l.class, crate::knl::RateClass::Conv { .. } | crate::knl::RateClass::DenseSmall))
                .count()
                .clamp(1, 16)
        }
    }
}

/// A completed group iteration.
#[derive(Clone, Copy, Debug)]
struct IterationRecord {
    start: f64,
    end: f64,
    flops: f64,
    staleness: u64,
}

/// Result of a cluster simulation.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Per-group iteration durations (seconds).
    pub iter_times: Vec<Vec<f64>>,
    /// Completed iteration intervals `(group, start, end)` in completion
    /// order — the timeline Gantt charts are drawn from.
    pub timeline: Vec<(usize, f64, f64)>,
    /// Total simulated wall-clock seconds.
    pub total_time: f64,
    /// Total training FLOPs executed.
    pub total_flops: f64,
    /// Images processed.
    pub images: u64,
    /// Peak system FLOP rate (best time bin), FLOP/s.
    pub peak_rate: f64,
    /// Sustained system FLOP rate (best contiguous window ≈ 10 mean
    /// iterations), FLOP/s.
    pub sustained_rate: f64,
    /// Mean update staleness in group-updates (0 for synchronous).
    pub mean_staleness: f64,
    /// Simulated time of the first node failure that halted a group, if
    /// any.
    pub failure_at: Option<f64>,
    /// Groups still alive at the end.
    pub live_groups: usize,
    /// Iterations completed by groups *after* they came back from a
    /// crash — work the recovery policy saved (0 without recovery).
    pub recovered_iterations: usize,
    /// PS-shard crash/repair cycles that occurred during the run.
    pub ps_respawns: u64,
}

impl SimResult {
    /// Throughput in images per second.
    pub fn images_per_sec(&self) -> f64 {
        if self.total_time <= 0.0 {
            0.0
        } else {
            self.images as f64 / self.total_time
        }
    }

    /// Average FLOP rate over the whole run.
    pub fn average_rate(&self) -> f64 {
        if self.total_time <= 0.0 {
            0.0
        } else {
            self.total_flops / self.total_time
        }
    }
}

enum Ev {
    /// Group finished compute + intra-group all-reduce.
    GroupLocalDone { group: usize, iter: usize, start: f64 },
    /// Group received all PS responses (or skipped PS when synchronous).
    GroupIterDone { group: usize, iter: usize, start: f64 },
    /// A node failure strikes the given group.
    Failure { group: usize },
    /// A crashed group finished its repair and re-enters the run at the
    /// given iteration (recovery policy, Sec. VIII-A).
    GroupRecover { group: usize, iter: usize },
}

/// The cluster simulator.
pub struct ClusterSim {
    cfg: SimConfig,
}

impl ClusterSim {
    /// Creates a simulator for the given configuration.
    pub fn new(cfg: SimConfig) -> Self {
        assert!(cfg.nodes >= 1 && cfg.groups >= 1, "need nodes and groups");
        assert!(cfg.groups <= cfg.nodes, "more groups than nodes");
        assert!(cfg.batch_per_group >= 1, "empty batch");
        Self { cfg }
    }

    /// Runs the simulation to completion.
    pub fn run(&self) -> SimResult {
        let cfg = &self.cfg;
        let mut rng = TensorRng::new(cfg.seed ^ 0x5157);
        let groups = cfg.groups;
        let hybrid = groups > 1;
        let num_ps = cfg.effective_num_ps();
        let group_nodes_base = cfg.nodes / groups;
        assert!(group_nodes_base >= 1, "groups larger than node count");

        // Per-group node counts (remainder spread over the first groups).
        let mut group_nodes: Vec<usize> = (0..groups)
            .map(|g| group_nodes_base + usize::from(g < cfg.nodes % groups))
            .collect();

        // Pre-sample a failure for the whole run.
        // Estimate the horizon from an ideal iteration time.
        let b_est = (cfg.batch_per_group / group_nodes_base).max(1);
        let est_iter = cfg.workload.node_iteration_time(&cfg.knl, b_est);
        let horizon = est_iter * cfg.iterations as f64 * 1.5;
        let failure = cfg
            .jitter
            .first_failure(&mut rng, cfg.nodes, horizon)
            .map(|t| (t, rng.below(groups)));

        let mut queue: EventQueue<Ev> = EventQueue::new();
        if let Some((t, g)) = failure {
            queue.schedule(t, Ev::Failure { group: g });
        }

        // PS bank: next-free times, model shards, delay-spike stream.
        let ps_bytes = cfg.workload.model_bytes / num_ps as u64;
        let ps_params = cfg.workload.params / num_ps as u64;
        let mut ps_free = vec![0.0f64; num_ps];
        let mut ps_rng = rng.fork(0x505);

        // Global PS update counter + per-group last-seen version for
        // staleness accounting.
        let mut global_updates: u64 = 0;
        let mut group_version = vec![0u64; groups];

        let mut iter_times: Vec<Vec<f64>> = vec![Vec::new(); groups];
        let mut records: Vec<IterationRecord> = Vec::new();
        let mut timeline: Vec<(usize, f64, f64)> = Vec::new();
        let mut alive = vec![true; groups];
        let mut done_iters = vec![0usize; groups];
        let mut rngs: Vec<TensorRng> = (0..groups).map(|g| rng.fork(g as u64 + 101)).collect();

        // Fault-injection state: which groups came back from a crash,
        // per-shard request counts driving scheduled PS crashes.
        let mut recovered = vec![false; groups];
        let mut recovered_iterations = 0usize;
        let mut ps_respawns = 0u64;
        let mut ps_served = vec![0u64; num_ps];
        let mut ps_crashed = vec![false; num_ps];
        // Recovery is a property of the hybrid design: a dead group can
        // re-fetch the current model from the PS bank. A synchronous run
        // has no surviving state to rejoin (Sec. VIII-A), so its death
        // stays permanent.
        let recovery = if hybrid { cfg.faults.recovery } else { None };

        let iter_flops_per_group =
            cfg.workload.flops_per_image() * cfg.batch_per_group as f64
                + (cfg.workload.params * cfg.workload.solver_flops_per_param) as f64;

        let mut failure_at: Option<f64> = None;

        // Kick off: every group starts its first iteration at t=0
        // (unless the plan kills it before it does anything).
        for g in 0..groups {
            if cfg.faults.group_crash_at(g) == Some(0) {
                alive[g] = false;
                failure_at.get_or_insert(0.0);
                if let Some(rec) = recovery {
                    queue.schedule(rec.mttr_secs, Ev::GroupRecover { group: g, iter: 0 });
                }
                continue;
            }
            let dur = self.group_local_time(g, 0, &group_nodes, &mut rngs[g]);
            queue.schedule(dur, Ev::GroupLocalDone { group: g, iter: 0, start: 0.0 });
        }

        while let Some((now, ev)) = queue.pop() {
            match ev {
                Ev::Failure { group } => {
                    if alive[group] {
                        if hybrid {
                            // One group is lost; the rest continue
                            // (Sec. VIII-A resilience).
                            alive[group] = false;
                        } else {
                            // A single node failure kills a synchronous run.
                            alive[0] = false;
                        }
                        failure_at.get_or_insert(now);
                        if let Some(rec) = recovery {
                            queue.schedule(
                                now + rec.mttr_secs,
                                Ev::GroupRecover { group, iter: done_iters[group] },
                            );
                        }
                    }
                }
                Ev::GroupRecover { group, iter } => {
                    if alive[group] || iter >= cfg.iterations {
                        continue;
                    }
                    // The repaired group re-fetches the *current* model
                    // from the PS bank and broadcasts it internally, then
                    // resumes at the iteration it lost.
                    alive[group] = true;
                    recovered[group] = true;
                    let refetch = cfg.net.p2p_time(cfg.workload.model_bytes)
                        + cfg.net.broadcast_time(group_nodes[group], cfg.workload.model_bytes);
                    let start = now + refetch;
                    let dur = self.group_local_time(group, iter, &group_nodes, &mut rngs[group]);
                    queue.schedule(start + dur, Ev::GroupLocalDone { group, iter, start });
                }
                Ev::GroupLocalDone { group, iter, start } => {
                    if !alive[group] {
                        continue;
                    }
                    if hybrid {
                        // Injected latency in front of this exchange, if
                        // the plan has one (congested link).
                        let arrive = now + cfg.faults.message_delay_secs(group, iter);
                        // Fork-join over the per-layer PS bank (FIFO).
                        let mut resume = arrive;
                        for (shard, free) in ps_free.iter_mut().enumerate() {
                            let begin = free.max(arrive);
                            let service = cfg.net.p2p_time(ps_bytes) // gradient up
                                + cfg.workload.solver_secs(ps_params) // PS applies update
                                + cfg.net.p2p_time(ps_bytes) // model down
                                + cfg.jitter.ps_request_delay(&mut ps_rng);
                            *free = begin + service;
                            // Scheduled PS crash: after this many served
                            // requests the shard dies and spends
                            // `repair_secs` restarting from its snapshot —
                            // later requests queue behind the repair.
                            ps_served[shard] += 1;
                            if !ps_crashed[shard] {
                                if let Some(c) = cfg.faults.ps_crash_for_shard(shard) {
                                    if ps_served[shard] >= c.after_requests {
                                        ps_crashed[shard] = true;
                                        ps_respawns += 1;
                                        *free += c.repair_secs;
                                    }
                                }
                            }
                            resume = resume.max(*free);
                        }
                        // Root broadcasts the fresh model to its group.
                        resume += cfg.net.broadcast_time(group_nodes[group], cfg.workload.model_bytes);
                        queue.schedule(resume, Ev::GroupIterDone { group, iter, start });
                    } else {
                        queue.schedule(now, Ev::GroupIterDone { group, iter, start });
                    }
                }
                Ev::GroupIterDone { group, iter, start } => {
                    if !alive[group] {
                        continue;
                    }
                    // Staleness: PS updates applied since this group last
                    // synchronised.
                    let staleness = global_updates - group_version[group];
                    global_updates += 1;
                    group_version[group] = global_updates;

                    let mut end = now;
                    if cfg.checkpoint_every > 0 && (iter + 1) % cfg.checkpoint_every == 0 {
                        end += cfg.workload.model_bytes as f64 / cfg.fs_bw;
                    }

                    iter_times[group].push(end - start);
                    timeline.push((group, start, end));
                    records.push(IterationRecord {
                        start,
                        end,
                        flops: iter_flops_per_group,
                        staleness,
                    });
                    done_iters[group] = iter + 1;
                    if recovered[group] {
                        recovered_iterations += 1;
                    }

                    if iter + 1 < cfg.iterations {
                        if cfg.faults.group_crash_at(group) == Some(iter + 1) && !recovered[group] {
                            // The plan kills this group before its next
                            // iteration. A group that already came back
                            // once is not re-killed by the same entry.
                            alive[group] = false;
                            failure_at.get_or_insert(end);
                            if let Some(rec) = recovery {
                                queue.schedule(
                                    end + rec.mttr_secs,
                                    Ev::GroupRecover { group, iter: iter + 1 },
                                );
                            }
                        } else {
                            let dur =
                                self.group_local_time(group, iter + 1, &group_nodes, &mut rngs[group]);
                            queue.schedule(
                                end + dur,
                                Ev::GroupLocalDone { group, iter: iter + 1, start: end },
                            );
                        }
                    }
                }
            }
        }

        let total_time = records.iter().map(|r| r.end).fold(0.0, f64::max);
        let total_flops: f64 = records.iter().map(|r| r.flops).sum();
        let images = records.len() as u64 * cfg.batch_per_group as u64;
        let (peak, sustained) = rate_windows(&records);
        let mean_staleness = if records.is_empty() {
            0.0
        } else {
            records.iter().map(|r| r.staleness as f64).sum::<f64>() / records.len() as f64
        };

        // Keep group_nodes alive for future extensions (failed-node
        // shrinkage is handled by group removal for now).
        let _ = &mut group_nodes;

        SimResult {
            iter_times,
            timeline,
            total_time,
            total_flops,
            images,
            peak_rate: peak,
            sustained_rate: sustained,
            mean_staleness,
            failure_at,
            live_groups: alive.iter().filter(|&&a| a).count(),
            recovered_iterations,
            ps_respawns,
        }
    }

    /// Compute + intra-group all-reduce time for one group iteration.
    fn group_local_time(
        &self,
        group: usize,
        iter: usize,
        group_nodes: &[usize],
        rng: &mut TensorRng,
    ) -> f64 {
        let cfg = &self.cfg;
        let nodes = group_nodes[group];
        let b = (cfg.batch_per_group / nodes).max(1);
        let compute = (cfg.workload.node_iteration_time(&cfg.knl, b)
            - if cfg.groups > 1 {
                // In hybrid mode the solver runs on the PS, not the node.
                cfg.workload.solver_secs(cfg.workload.params)
            } else {
                0.0
            })
            // Scheduled straggler window: the whole group crawls at the
            // pace of its slowest node.
            * cfg.faults.straggler_factor(group, iter);
        let barrier = cfg.jitter.barrier_multiplier(rng, nodes);
        let delay = cfg.jitter.barrier_delay(rng, nodes);
        let mut allreduce = cfg.net.allreduce_time(nodes, cfg.workload.model_bytes)
            * cfg.jitter.compute_multiplier(rng);
        if cfg.overlap_comm {
            // Layer-wise all-reduce overlaps with the backward pass
            // (≈ half of the compute); only the excess is exposed.
            let window = 0.5 * compute * barrier;
            allreduce = (allreduce - window).max(0.0);
        }
        compute * barrier + delay + allreduce
    }
}

/// Computes (peak, sustained) system FLOP rates from iteration records:
/// FLOPs are spread uniformly over each record's interval, binned at the
/// mean iteration duration; peak is the best bin, sustained the best
/// 10-bin contiguous window (mirroring the paper's best-iteration /
/// best-100-iteration-window definitions in Sec. V).
fn rate_windows(records: &[IterationRecord]) -> (f64, f64) {
    if records.is_empty() {
        return (0.0, 0.0);
    }
    let t_end = records.iter().map(|r| r.end).fold(0.0, f64::max);
    let mean_dur = records.iter().map(|r| r.end - r.start).sum::<f64>() / records.len() as f64;
    let bin = mean_dur.max(t_end / 1000.0).max(1e-9);
    let nbins = (t_end / bin).ceil() as usize + 1;
    let mut bins = vec![0.0f64; nbins];
    for r in records {
        let dur = (r.end - r.start).max(1e-12);
        let rate = r.flops / dur;
        let first = (r.start / bin) as usize;
        let last = ((r.end / bin) as usize).min(nbins - 1);
        for (off, slot) in bins[first..=last].iter_mut().enumerate() {
            let b = first + off;
            let lo = (b as f64 * bin).max(r.start);
            let hi = ((b + 1) as f64 * bin).min(r.end);
            if hi > lo {
                *slot += rate * (hi - lo);
            }
        }
    }
    // Drop the ramp-up/ramp-down edge bins from the peak estimate.
    let interior = if bins.len() > 4 { &bins[1..bins.len() - 2] } else { &bins[..] };
    let peak = interior.iter().copied().fold(0.0, f64::max) / bin;
    let window = 10.min(interior.len()).max(1);
    let mut sustained = 0.0f64;
    for w in interior.windows(window) {
        sustained = sustained.max(w.iter().sum::<f64>() / (window as f64 * bin));
    }
    (peak, sustained)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knl::RateClass;

    fn toy_workload() -> Workload {
        Workload {
            name: "toy".into(),
            layers: vec![
                LayerCost {
                    name: "conv1".into(),
                    train_flops_per_image: 1_000_000_000,
                    class: RateClass::Conv { cin: 3 },
                },
                LayerCost {
                    name: "conv2".into(),
                    train_flops_per_image: 10_000_000_000,
                    class: RateClass::Conv { cin: 128 },
                },
                LayerCost {
                    name: "relu".into(),
                    train_flops_per_image: 1_000_000,
                    class: RateClass::MemoryBound { bytes_per_image: 50_000_000 },
                },
            ],
            params: 600_000,
            model_bytes: 2_400_000,
            image_bytes: 600_000,
            io_bw: 3.0e9,
            solver_flops_per_param: 12,
            solver_bytes_per_param: 24.0,
            solver_bw: 1.6e9,
        }
    }

    #[test]
    fn single_node_rate_is_sane() {
        let w = toy_workload();
        let knl = KnlModel::default();
        let r = w.single_node_rate(&knl, 8);
        assert!((5e11..4e12).contains(&r), "rate {r:.3e}");
        // Larger batches are more efficient.
        assert!(w.single_node_rate(&knl, 64) > w.single_node_rate(&knl, 2));
    }

    #[test]
    fn profile_includes_solver_and_io() {
        let w = toy_workload();
        let p = single_node_profile(&w, &KnlModel::default(), 8);
        assert_eq!(p.len(), w.layers.len() + 2);
        assert!(p.iter().any(|e| e.name == "solver" && e.secs > 0.0));
        assert!(p.iter().any(|e| e.name == "io" && e.secs > 0.0));
    }

    #[test]
    fn sim_is_deterministic_given_seed() {
        let cfg = SimConfig::new(toy_workload(), 16, 4, 64);
        let a = ClusterSim::new(cfg.clone()).run();
        let b = ClusterSim::new(cfg).run();
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.total_flops, b.total_flops);
    }

    #[test]
    fn sync_iterations_have_no_staleness() {
        let mut cfg = SimConfig::new(toy_workload(), 8, 1, 64).ideal();
        cfg.iterations = 10;
        let r = ClusterSim::new(cfg).run();
        assert_eq!(r.mean_staleness, 0.0);
        assert_eq!(r.iter_times[0].len(), 10);
    }

    #[test]
    fn hybrid_groups_have_staleness_near_group_count() {
        let mut cfg = SimConfig::new(toy_workload(), 16, 4, 64).ideal();
        cfg.iterations = 40;
        let r = ClusterSim::new(cfg).run();
        // In steady state every group sees ~G-1 other updates between its
        // own (plus start-up transients).
        assert!(r.mean_staleness > 1.5 && r.mean_staleness < 4.5, "staleness {}", r.mean_staleness);
    }

    #[test]
    fn more_nodes_increase_throughput_ideal() {
        let mut t = Vec::new();
        for nodes in [1usize, 4, 16] {
            let mut cfg = SimConfig::new(toy_workload(), nodes, 1, 256).ideal();
            cfg.iterations = 10;
            let r = ClusterSim::new(cfg).run();
            t.push(r.images_per_sec());
        }
        assert!(t[1] > t[0] * 2.0, "4 nodes ≥ 2x: {t:?}");
        assert!(t[2] > t[1] * 2.0, "16 nodes ≥ 2x over 4: {t:?}");
    }

    #[test]
    fn strong_scaling_sync_saturates_with_jitter() {
        // Fixed total batch: per-node batch shrinks with node count and
        // stragglers grow — the Fig. 6 mechanism.
        let run = |nodes: usize| {
            let mut cfg = SimConfig::new(toy_workload(), nodes, 1, 2048);
            cfg.iterations = 12;
            cfg.seed = 7;
            ClusterSim::new(cfg).run().images_per_sec()
        };
        let t256 = run(256);
        let t1024 = run(1024);
        let speedup = t1024 / t256;
        // Far from the ideal 4x.
        assert!(speedup < 3.0, "sync strong scaling should saturate: {speedup}");
    }

    #[test]
    fn hybrid_beats_sync_at_scale_strong_scaling() {
        let run = |groups: usize| {
            let mut cfg = SimConfig::new(toy_workload(), 1024, groups, 2048);
            cfg.iterations = 12;
            cfg.seed = 11;
            ClusterSim::new(cfg).run().images_per_sec()
        };
        let sync = run(1);
        let hybrid4 = run(4);
        assert!(hybrid4 > sync, "hybrid-4 {hybrid4} should beat sync {sync} at 1024 nodes");
    }

    #[test]
    fn failure_kills_sync_but_not_hybrid() {
        let deadly = JitterModel { fail_rate_per_node_hour: 50.0, ..JitterModel::none() };
        let mut sync_cfg = SimConfig::new(toy_workload(), 64, 1, 512);
        sync_cfg.jitter = deadly.clone();
        sync_cfg.iterations = 2000;
        let sync = ClusterSim::new(sync_cfg).run();
        assert!(sync.failure_at.is_some());
        assert_eq!(sync.live_groups, 0);

        let mut hyb_cfg = SimConfig::new(toy_workload(), 64, 4, 512);
        hyb_cfg.jitter = deadly;
        hyb_cfg.iterations = 2000;
        let hyb = ClusterSim::new(hyb_cfg).run();
        assert!(hyb.failure_at.is_some());
        assert_eq!(hyb.live_groups, 3, "hybrid should lose exactly one group");
    }

    #[test]
    fn checkpoint_overhead_lowers_sustained_rate() {
        let mut with = SimConfig::new(toy_workload(), 8, 1, 64).ideal();
        with.iterations = 30;
        with.checkpoint_every = 5;
        with.fs_bw = 1.0e6; // slow FS to make it visible
        let r_with = ClusterSim::new(with).run();

        let mut without = SimConfig::new(toy_workload(), 8, 1, 64).ideal();
        without.iterations = 30;
        let r_without = ClusterSim::new(without).run();

        assert!(r_with.sustained_rate < r_without.sustained_rate);
        assert!(r_with.peak_rate >= r_with.sustained_rate);
    }

    #[test]
    fn comm_overlap_never_hurts_and_helps_big_models() {
        // A workload with a heavy model (large all-reduce) benefits from
        // overlap; overlap must never make an iteration slower.
        let mut w = toy_workload();
        w.model_bytes = 320 * 1024 * 1024; // climate-sized
        let run = |overlap: bool| {
            let mut cfg = SimConfig::new(w.clone(), 256, 1, 2048).ideal();
            cfg.iterations = 6;
            cfg.overlap_comm = overlap;
            ClusterSim::new(cfg).run().images_per_sec()
        };
        let plain = run(false);
        let overlapped = run(true);
        assert!(
            overlapped > plain * 1.02,
            "overlap should hide a heavy all-reduce: {plain} vs {overlapped}"
        );
    }

    #[test]
    fn planned_group_crash_without_recovery_matches_jitter_failure_story() {
        let mut cfg = SimConfig::new(toy_workload(), 16, 4, 64).ideal();
        cfg.iterations = 20;
        cfg.faults = crate::faults::FaultPlan::none().with_group_crash(2, 5);
        let r = ClusterSim::new(cfg).run();
        assert!(r.failure_at.is_some());
        assert_eq!(r.live_groups, 3);
        assert_eq!(r.recovered_iterations, 0);
        assert_eq!(r.iter_times[2].len(), 5, "group 2 dies before iteration 5");
        assert_eq!(r.iter_times[0].len(), 20, "others run to completion");
    }

    #[test]
    fn recovery_brings_a_crashed_group_back() {
        let mut cfg = SimConfig::new(toy_workload(), 16, 4, 64).ideal();
        cfg.iterations = 20;
        cfg.faults = crate::faults::FaultPlan::none()
            .with_group_crash(2, 5)
            .with_recovery(2, 0.5);
        let r = ClusterSim::new(cfg).run();
        assert_eq!(r.live_groups, 4, "the crashed group must rejoin");
        assert_eq!(r.iter_times[2].len(), 20, "it finishes all its iterations");
        assert_eq!(r.recovered_iterations, 15, "iterations 5..20 ran post-recovery");
        assert!(r.failure_at.is_some());
    }

    #[test]
    fn recovery_does_not_resurrect_a_synchronous_run() {
        let mut cfg = SimConfig::new(toy_workload(), 8, 1, 64).ideal();
        cfg.iterations = 20;
        cfg.faults = crate::faults::FaultPlan::none()
            .with_group_crash(0, 3)
            .with_recovery(2, 0.5);
        let r = ClusterSim::new(cfg).run();
        assert_eq!(r.live_groups, 0, "sync has no surviving state to rejoin");
        assert_eq!(r.recovered_iterations, 0);
        assert_eq!(r.iter_times[0].len(), 3);
    }

    #[test]
    fn straggler_window_slows_only_its_group_and_window() {
        let base = {
            let mut cfg = SimConfig::new(toy_workload(), 16, 4, 64).ideal();
            cfg.iterations = 10;
            ClusterSim::new(cfg).run()
        };
        let slow = {
            let mut cfg = SimConfig::new(toy_workload(), 16, 4, 64).ideal();
            cfg.iterations = 10;
            cfg.faults = crate::faults::FaultPlan::none().with_straggler(1, 2, 6, 4.0);
            ClusterSim::new(cfg).run()
        };
        assert!(slow.total_time > base.total_time);
        // Inside the window group 1 is ~4x slower than its own baseline.
        assert!(slow.iter_times[1][3] > 2.0 * base.iter_times[1][3]);
        // Outside the window it matches the baseline.
        assert!((slow.iter_times[1][8] - base.iter_times[1][8]).abs() < 1e-9);
    }

    #[test]
    fn ps_crash_repair_stalls_but_run_completes() {
        let base = {
            let mut cfg = SimConfig::new(toy_workload(), 16, 4, 64).ideal();
            cfg.iterations = 12;
            ClusterSim::new(cfg).run()
        };
        let crashed = {
            let mut cfg = SimConfig::new(toy_workload(), 16, 4, 64).ideal();
            cfg.iterations = 12;
            cfg.faults = crate::faults::FaultPlan::none().with_ps_crash(0, 8, 5.0);
            ClusterSim::new(cfg).run()
        };
        assert_eq!(crashed.ps_respawns, 1);
        assert_eq!(crashed.live_groups, 4, "a PS repair must not kill groups");
        assert_eq!(
            crashed.images, base.images,
            "all iterations still complete after the PS repair"
        );
        assert!(crashed.total_time > base.total_time + 4.0, "repair time is visible");
    }

    #[test]
    fn message_delay_shows_up_in_one_iteration() {
        let mut cfg = SimConfig::new(toy_workload(), 16, 4, 64).ideal();
        cfg.iterations = 10;
        cfg.faults = crate::faults::FaultPlan::none().with_message_delay(0, 4, 2.0);
        let r = ClusterSim::new(cfg).run();
        let mut base_cfg = SimConfig::new(toy_workload(), 16, 4, 64).ideal();
        base_cfg.iterations = 10;
        let base = ClusterSim::new(base_cfg).run();
        assert!(r.iter_times[0][4] >= base.iter_times[0][4] + 2.0);
    }

    #[test]
    fn peak_at_least_sustained_at_least_zero() {
        let mut cfg = SimConfig::new(toy_workload(), 32, 2, 256);
        cfg.iterations = 20;
        let r = ClusterSim::new(cfg).run();
        assert!(r.peak_rate >= r.sustained_rate);
        assert!(r.sustained_rate > 0.0);
    }
}
