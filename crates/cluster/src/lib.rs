#![warn(missing_docs)]
//! # scidl-cluster
//!
//! Discrete-event simulator of the Cori Phase II system (Sec. IV) — the
//! substitute for the 9,688-node Cray XC40 the paper ran on. It models:
//!
//! * [`knl`] — the Intel Xeon Phi 7250 (Knights Landing) node: peak and
//!   sustained FLOP rates, DeepBench-style efficiency collapse at small
//!   minibatch sizes, channel-count-dependent convolution efficiency and
//!   memory-bandwidth-bound layers, calibrated against the paper's
//!   measured single-node rates (1.90 TF/s HEP, 2.09 TF/s Climate at
//!   batch 8 — Sec. VI-A),
//! * [`aries`] — the Cray Aries dragonfly interconnect: ring/tree
//!   all-reduce and broadcast cost models, point-to-point transfers and
//!   parameter-server service times,
//! * [`jitter`] — run-to-run variability: lognormal compute jitter,
//!   heavy straggler tails and node-failure injection (Sec. VIII-A
//!   reports up to 30% runtime variability and non-zero failure
//!   probability at full scale),
//! * [`event`] — a generic binary-heap event calendar used both by the
//!   throughput simulations here and by the simulated-time training
//!   backend in `scidl-core`,
//! * [`faults`] — declarative fault-injection scenarios ([`FaultPlan`]):
//!   scheduled group/PS crashes, stragglers, message delays and a
//!   recovery policy, consumed by both [`sim`] and the thread engine in
//!   `scidl-core` (Sec. VIII-A),
//! * [`sim`] — iteration-level cluster simulations of synchronous and
//!   hybrid training that regenerate the scaling studies of
//!   Figs. 6–7 and the full-system throughput numbers of Sec. VI-B3.
//!
//! ## Example
//!
//! ```
//! use scidl_cluster::KnlModel;
//!
//! let knl = KnlModel::default();
//! // Many-channel convolutions run far faster than the few-channel
//! // input layers, and small minibatches collapse efficiency — the two
//! // DeepBench effects the paper builds its scaling story on.
//! assert!(knl.conv_rate(128, 8) > 2.0 * knl.conv_rate(3, 8));
//! assert!(knl.conv_rate(128, 64) > 2.0 * knl.conv_rate(128, 1));
//! ```

pub mod aries;
pub mod event;
pub mod faults;
pub mod jitter;
pub mod knl;
pub mod sim;
pub mod topology;

pub use aries::AriesModel;
pub use event::{EventQueue, SimTime};
pub use faults::{FaultPlan, GroupCrash, MessageDelay, PsCrash, Recovery, Straggler};
pub use jitter::JitterModel;
pub use knl::{KnlModel, LayerCost, McdramMode, RateClass};
pub use sim::{ClusterSim, SimConfig, SimResult};
