//! Quickstart: train a small HEP classifier with the hybrid
//! (sync-groups + async parameter-server) architecture on real threads.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This exercises the whole public stack in under a minute: the synthetic
//! event generator (`scidl-data`), the from-scratch CNN (`scidl-nn`),
//! the MLSL-style communication layer (`scidl-comm`) and the hybrid
//! engine (`scidl-core`).

use scidl_core::thread_engine::{ThreadEngine, ThreadEngineConfig};
use scidl_data::{HepConfig, HepDataset};
use std::sync::Arc;

fn main() {
    // 1. Generate a small synthetic HEP dataset (32px calorimeter images).
    let ds = Arc::new(HepDataset::generate(HepConfig::small(), 512, 42));
    println!(
        "dataset: {} events, {} signal",
        ds.len(),
        ds.labels.iter().sum::<usize>()
    );

    // 2. Configure a hybrid run: 2 compute groups of 2 worker threads,
    //    each group sees a 32-image minibatch per update.
    let mut cfg = ThreadEngineConfig::new(2, 2, 32);
    cfg.iterations = 120;
    cfg.lr = 4e-3;
    cfg.momentum = 0.7; // reduced vs sync — asynchrony begets momentum [31]
    cfg.seed = 7;

    // 3. Train. Every "node" is a real thread; groups all-reduce
    //    internally and exchange updates with per-layer parameter servers.
    let run = ThreadEngine::run(&cfg, Arc::clone(&ds));

    println!("updates applied: {}", run.updates);
    println!("mean staleness:  {:.2} updates", run.mean_staleness);
    let pts = &run.curve.points;
    println!(
        "loss: {:.4} (first) -> {:.4} (last)",
        pts.first().map(|p| p.1).unwrap_or(f32::NAN),
        pts.last().map(|p| p.1).unwrap_or(f32::NAN)
    );

    // 4. Evaluate the trained model.
    let mut rng = scidl_tensor::TensorRng::new(cfg.seed);
    let mut model = scidl_nn::arch::hep_small(&mut rng);
    scidl_nn::network::Model::set_flat_params(&mut model, &run.final_params);
    let test = HepDataset::generate(HepConfig::small(), 256, 43);
    let idx: Vec<usize> = (0..test.len()).collect();
    let acc = scidl_core::task::hep_accuracy(&mut model, &test, &idx);
    println!("held-out accuracy: {:.1}%", acc * 100.0);
}
