//! Failure resilience on real threads (Sec. VIII-A): "even a single node
//! failure can cause complete failure of synchronous runs; hybrid runs
//! are much more resilient since only one of the compute groups gets
//! affected." We kill one compute group mid-run and watch the others
//! finish their full budget through the shared parameter servers, then
//! checkpoint the surviving model.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use scidl_core::checkpoint::Checkpoint;
use scidl_core::thread_engine::{ThreadEngine, ThreadEngineConfig};
use scidl_data::{HepConfig, HepDataset};
use scidl_nn::network::Model;
use scidl_tensor::TensorRng;
use std::sync::Arc;

fn main() {
    let ds = Arc::new(HepDataset::generate(HepConfig::small(), 384, 55));

    let mut cfg = ThreadEngineConfig::new(4, 2, 16);
    cfg.iterations = 25;
    cfg.lr = 3e-3;
    cfg.momentum = 0.6;
    cfg.fail_group_at = Some((2, 5)); // group 2 dies at its 5th iteration

    println!("hybrid run: 4 groups x 2 nodes; group 2 fails at iteration 5\n");
    let run = ThreadEngine::run(&cfg, Arc::clone(&ds));

    let healthy = 3 * cfg.iterations as u64;
    let failed = 5;
    println!("updates applied: {} (3 healthy groups x 25 + {} from the dead group)", run.updates, failed);
    assert_eq!(run.updates, healthy + failed);
    println!("mean staleness:  {:.2}", run.mean_staleness);
    let pts = &run.curve.points;
    println!(
        "loss: {:.4} -> {:.4} despite the failure",
        pts.first().map(|p| p.1).unwrap_or(f32::NAN),
        pts.last().map(|p| p.1).unwrap_or(f32::NAN)
    );

    // The model survives on the PS bank: snapshot it for restart.
    let mut rng = TensorRng::new(cfg.seed);
    let mut model = scidl_nn::arch::hep_small(&mut rng);
    model.set_flat_params(&run.final_params);
    let ck = Checkpoint::capture(&model, run.updates, cfg.seed);
    let mut path = std::env::temp_dir();
    path.push("scidl_fault_tolerance_demo.ckpt");
    ck.save(&path).expect("snapshot failed");
    let restored = Checkpoint::load(&path).expect("restore failed");
    std::fs::remove_file(&path).ok();
    assert_eq!(restored.params, run.final_params);
    println!("\nmodel checkpointed and restored intact ({} params, iteration {}).", restored.params.len(), restored.iteration);
    println!("a synchronous run would have died with the first failed node.");
}
