//! Fault injection and recovery on real threads (Sec. VIII-A).
//!
//! The paper observes that "even a single node failure can cause
//! complete failure of synchronous runs; hybrid runs are much more
//! resilient since only one of the compute groups gets affected." This
//! demo goes one step further than the paper: the dead group *comes
//! back*. Three runs of the same scenario:
//!
//! 1. **No recovery** — group 2 dies at iteration 5 and stays dead
//!    (the paper's baseline: its remaining work is lost).
//! 2. **With recovery** — the crashed group sits out its MTTR, re-fetches
//!    the current model from the parameter-server bank and finishes its
//!    budget; the run also writes crash-safe checkpoints as it goes.
//! 3. **PS crash** — a parameter-server thread is killed mid-run; the
//!    supervisor respawns it from its snapshot and training completes.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use scidl_core::checkpoint::Checkpoint;
use scidl_core::faults;
use scidl_core::thread_engine::{ThreadEngine, ThreadEngineConfig};
use scidl_data::{HepConfig, HepDataset};
use std::sync::Arc;

fn main() {
    let ds = Arc::new(HepDataset::generate(HepConfig::small(), 384, 55));

    let base = {
        let mut cfg = ThreadEngineConfig::new(4, 2, 16);
        cfg.iterations = 25;
        cfg.lr = 3e-3;
        cfg.momentum = 0.6;
        cfg
    };

    // --- 1. group crash, no recovery: the paper's baseline -------------
    println!("hybrid run: 4 groups x 2 nodes; group 2 dies at iteration 5\n");
    let mut cfg = base.clone();
    cfg.faults = faults::kill_group(2, 5);
    let baseline = ThreadEngine::run(&cfg, Arc::clone(&ds));
    println!(
        "[no recovery]   updates: {:2} (3 healthy groups x 25 + 5 from the dead group)",
        baseline.updates
    );
    assert_eq!(baseline.updates, 3 * 25 + 5);

    // --- 2. same crash, with recovery + crash-safe checkpoints ---------
    let mut ckpt = std::env::temp_dir();
    ckpt.push("scidl_fault_tolerance_demo.ckpt");
    let mut cfg = base.clone();
    cfg.faults = faults::kill_and_recover_group(2, 5, 3, 0.0);
    cfg.checkpoint_every = 5;
    cfg.checkpoint_path = Some(ckpt.clone());
    let recovered = ThreadEngine::run(&cfg, Arc::clone(&ds));
    println!(
        "[with recovery] updates: {:2} ({} of them after the group rejoined from the PS bank)",
        recovered.updates, recovered.recovered_updates
    );
    assert_eq!(recovered.updates, 4 * 25, "every group finishes its budget");
    assert_eq!(recovered.recovered_updates, 25 - 5);
    assert!(
        recovered.updates > baseline.updates,
        "recovery must beat the no-recovery baseline"
    );
    let pts = &recovered.curve.points;
    println!(
        "                loss: {:.4} -> {:.4} across the crash and recovery",
        pts.first().map(|p| p.1).unwrap_or(f32::NAN),
        pts.last().map(|p| p.1).unwrap_or(f32::NAN)
    );

    // The periodic checkpoints are crash-safe (tmp + rename, checksum
    // verified on load): the latest one is always intact.
    let ck = Checkpoint::load(&ckpt).expect("periodic checkpoint unreadable");
    std::fs::remove_file(&ckpt).ok();
    println!(
        "                {} checkpoints written; latest at iteration {} ({} params, checksum ok)",
        recovered.checkpoints_written,
        ck.iteration,
        ck.params.len()
    );

    // --- 3. parameter-server crash: supervisor failover -----------------
    let mut cfg = base;
    cfg.faults = faults::kill_ps_shard(0, 12, 0.0);
    let ps_run = ThreadEngine::run(&cfg, ds);
    println!(
        "[PS crash]      updates: {:2} with {} PS failover(s) — no iteration lost",
        ps_run.updates, ps_run.ps_respawns
    );
    assert_eq!(ps_run.updates, 4 * 25);
    assert!(ps_run.ps_respawns >= 1);

    println!("\na synchronous run would have died with the first failed node;");
    println!("here every failure is either tolerated or repaired mid-run.");
}
