//! Serving a trained HEP classifier with dynamic batching — and keeping
//! it up under chaos.
//!
//! The end of the training story: a checkpoint written by the training
//! loop is loaded into a `ModelRegistry` (verified bit-identical to the
//! network that wrote it), a supervised worker pool serves it through
//! the dynamic batcher while a `FaultPlan` crashes a worker mid-batch,
//! a corrupt checkpoint is rejected by the guarded hot-swap (the old
//! model keeps serving), a healthy one swaps in with zero downtime, and
//! the run closes with the queue-wait / compute latency split plus the
//! supervisor's incident report.
//!
//! ```text
//! cargo run --release --example inference_serving
//! ```

use scidl_cluster::faults::FaultPlan;
use scidl_core::checkpoint::Checkpoint;
use scidl_core::metrics::Summary;
use scidl_serve::{
    check_roundtrip, BatchPolicy, ModelRegistry, RetryPolicy, Server, ServerConfig, ServingModel,
    SwapError,
};
use scidl_tensor::{Shape4, TensorRng};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // --- a "trained" model writes a checkpoint -------------------------
    let mut rng = TensorRng::new(42);
    let trained = scidl_nn::arch::hep_small(&mut rng);
    let mut path = std::env::temp_dir();
    path.push("scidl_inference_serving_demo.ckpt");
    Checkpoint::capture(&trained, 1000, 42).save(&path).expect("checkpoint write");

    // --- load it back under the round-trip guarantee -------------------
    let mut arch_rng = TensorRng::new(0);
    let model = ServingModel::load(&path, scidl_nn::arch::hep_small(&mut arch_rng))
        .expect("checkpoint load");
    let mut probe_rng = TensorRng::new(7);
    let probe = probe_rng.uniform_tensor(Shape4::new(4, 3, 32, 32), -1.0, 1.0);
    check_roundtrip(&trained, &model.network, &probe)
        .expect("loaded checkpoint must serve bit-identical logits");
    println!(
        "checkpoint round-trip verified: logits bit-identical (iteration {}, seed {})",
        model.iteration, model.seed
    );

    // --- serve it through the batcher while chaos crashes a worker -----
    let registry = Arc::new(ModelRegistry::new(model));
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            policy: BatchPolicy::dynamic(8, Duration::from_millis(5)),
            // Declarative chaos: worker 0 panics mid-way through its
            // first batch; the supervisor respawns it and requeues the
            // in-flight requests.
            faults: FaultPlan::none().with_worker_crash(0, 0, 0.005),
            ..Default::default()
        },
    );
    let client = server.client();

    let retry = RetryPolicy { deadline: Some(Duration::from_millis(500)), ..Default::default() };
    let mut xr = TensorRng::new(3);
    let pending: Vec<_> = (0..24)
        .map(|_| {
            let x = xr.uniform_tensor(Shape4::new(1, 3, 32, 32), -1.0, 1.0);
            (x.clone(), client.submit(x).expect("queue has room"))
        })
        .collect();
    let mut batched = 0usize;
    let mut retried = 0usize;
    for (x, rx) in pending {
        // The crashed worker's in-flight batch is requeued by the
        // supervisor, so most requests still resolve `Ok` on the first
        // reply. Anything that comes back as a retryable error (or a
        // dropped reply channel) goes through the bounded retry path.
        let r = match rx.recv().unwrap_or(Err(scidl_serve::ServeError::WorkerLost)) {
            Ok(r) => r,
            Err(e) => {
                assert!(e.is_retryable(), "terminal error under a healthy pool: {e}");
                retried += 1;
                client.infer_with_retry(x, &retry).expect("retry absorbs the crash")
            }
        };
        assert_eq!(r.logits.len(), scidl_nn::arch::HEP_CLASSES);
        assert_eq!(r.model_iteration, 1000);
        if r.batch_size > 1 {
            batched += 1;
        }
    }
    println!(
        "served 24 requests through an injected worker crash; \
         {batched} rode in a coalesced batch, {retried} needed a client retry"
    );

    // --- a corrupt snapshot is rejected before publication -------------
    let mut rng2 = TensorRng::new(43);
    let newer = scidl_nn::arch::hep_small(&mut rng2);
    Checkpoint::capture(&newer, 2000, 43).save(&path).expect("checkpoint write");
    let mut corrupt = std::fs::read(&path).expect("read checkpoint");
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0xFF;
    let mut bad_path = std::env::temp_dir();
    bad_path.push("scidl_inference_serving_demo_corrupt.ckpt");
    std::fs::write(&bad_path, &corrupt).expect("write corrupt checkpoint");

    let mut arch_rng2 = TensorRng::new(0);
    let err = registry
        .load_and_swap_guarded(
            &bad_path,
            scidl_nn::arch::hep_small(&mut arch_rng2),
            &probe,
            Some(&newer),
        )
        .expect_err("bit-flipped checkpoint must not publish");
    std::fs::remove_file(&bad_path).ok();
    assert!(matches!(err, SwapError::Load(_)));
    let x = xr.uniform_tensor(Shape4::new(1, 3, 32, 32), -1.0, 1.0);
    let still = client.infer(x).expect("serve after rejected swap");
    assert_eq!(still.model_iteration, 1000, "previous model keeps serving");
    println!("corrupt checkpoint rejected ({err}); iteration 1000 kept serving");

    // --- the healthy snapshot hot-swaps with zero downtime -------------
    let mut arch_rng3 = TensorRng::new(0);
    registry
        .load_and_swap_guarded(&path, scidl_nn::arch::hep_small(&mut arch_rng3), &probe, Some(&newer))
        .expect("hot swap");
    std::fs::remove_file(&path).ok();
    let x = xr.uniform_tensor(Shape4::new(1, 3, 32, 32), -1.0, 1.0);
    let after = client.infer(x).expect("serve after swap");
    assert_eq!(after.model_iteration, 2000, "new snapshot answers");
    println!("hot-swapped to iteration 2000 with zero downtime");

    // --- the latency account and the incident report -------------------
    let (recorder, report) = server.shutdown_with_report();
    let fmt = |s: &Summary| {
        format!("p50 {:6.2} ms  p99 {:6.2} ms", s.p50 * 1e3, s.p99 * 1e3)
    };
    println!("requests served: {}", recorder.len());
    println!("  total   latency: {}", fmt(&recorder.total_summary().unwrap()));
    println!("  queue   wait:    {}", fmt(&recorder.queue_summary().unwrap()));
    println!("  compute:         {}", fmt(&recorder.compute_summary().unwrap()));
    println!(
        "  queue share of total: {:.0}%",
        recorder.queue_share().unwrap() * 100.0
    );
    println!(
        "incident report: {} panics, {} respawns, {} requeued, {} lost",
        report.panics, report.respawns, report.requeued, report.worker_lost
    );
    assert!(report.panics >= 1, "the injected crash fired");
    assert_eq!(report.worker_lost, 0, "requeue recovered every in-flight request");
}
