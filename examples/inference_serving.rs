//! Serving a trained HEP classifier with dynamic batching.
//!
//! The end of the training story: a checkpoint written by the training
//! loop is loaded into a `ModelRegistry` (verified bit-identical to the
//! network that wrote it), a worker pool serves it through the dynamic
//! batcher, a second checkpoint is hot-swapped in mid-stream, and the
//! run closes with the queue-wait / compute latency split.
//!
//! ```text
//! cargo run --release --example inference_serving
//! ```

use scidl_core::checkpoint::Checkpoint;
use scidl_core::metrics::Summary;
use scidl_serve::{
    check_roundtrip, BatchPolicy, ModelRegistry, Server, ServerConfig, ServingModel,
};
use scidl_tensor::{Shape4, TensorRng};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // --- a "trained" model writes a checkpoint -------------------------
    let mut rng = TensorRng::new(42);
    let trained = scidl_nn::arch::hep_small(&mut rng);
    let mut path = std::env::temp_dir();
    path.push("scidl_inference_serving_demo.ckpt");
    Checkpoint::capture(&trained, 1000, 42).save(&path).expect("checkpoint write");

    // --- load it back under the round-trip guarantee -------------------
    let mut arch_rng = TensorRng::new(0);
    let model = ServingModel::load(&path, scidl_nn::arch::hep_small(&mut arch_rng))
        .expect("checkpoint load");
    let mut probe_rng = TensorRng::new(7);
    let probe = probe_rng.uniform_tensor(Shape4::new(4, 3, 32, 32), -1.0, 1.0);
    check_roundtrip(&trained, &model.network, &probe)
        .expect("loaded checkpoint must serve bit-identical logits");
    println!(
        "checkpoint round-trip verified: logits bit-identical (iteration {}, seed {})",
        model.iteration, model.seed
    );

    // --- serve it through the dynamic batcher --------------------------
    let registry = Arc::new(ModelRegistry::new(model));
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            policy: BatchPolicy::dynamic(8, Duration::from_millis(5)),
        },
    );
    let client = server.client();

    let mut xr = TensorRng::new(3);
    let pending: Vec<_> = (0..24)
        .map(|_| {
            let x = xr.uniform_tensor(Shape4::new(1, 3, 32, 32), -1.0, 1.0);
            client.submit(x).expect("queue has room")
        })
        .collect();
    let mut batched = 0usize;
    for rx in pending {
        let r = rx.recv().expect("server answered");
        assert_eq!(r.logits.len(), scidl_nn::arch::HEP_CLASSES);
        assert_eq!(r.model_iteration, 1000);
        if r.batch_size > 1 {
            batched += 1;
        }
    }
    println!("served 24 requests; {batched} rode in a coalesced batch");

    // --- hot-swap a newer snapshot while serving continues -------------
    let mut rng2 = TensorRng::new(43);
    let newer = scidl_nn::arch::hep_small(&mut rng2);
    Checkpoint::capture(&newer, 2000, 43).save(&path).expect("checkpoint write");
    let mut arch_rng2 = TensorRng::new(0);
    registry
        .load_and_swap(
            &path,
            scidl_nn::arch::hep_small(&mut arch_rng2),
            Some((&newer, &probe)),
        )
        .expect("hot swap");
    std::fs::remove_file(&path).ok();
    let x = xr.uniform_tensor(Shape4::new(1, 3, 32, 32), -1.0, 1.0);
    let after = client.infer(x).expect("serve after swap");
    assert_eq!(after.model_iteration, 2000, "new snapshot answers");
    println!("hot-swapped to iteration 2000 with zero downtime");

    // --- the latency account -------------------------------------------
    let recorder = server.shutdown();
    let fmt = |s: &Summary| {
        format!("p50 {:6.2} ms  p99 {:6.2} ms", s.p50 * 1e3, s.p99 * 1e3)
    };
    println!("requests served: {}", recorder.len());
    println!("  total   latency: {}", fmt(&recorder.total_summary().unwrap()));
    println!("  queue   wait:    {}", fmt(&recorder.queue_summary().unwrap()));
    println!("  compute:         {}", fmt(&recorder.compute_summary().unwrap()));
    println!(
        "  queue share of total: {:.0}%",
        recorder.queue_share().unwrap() * 100.0
    );
}
