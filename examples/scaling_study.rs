//! Scaling study on the simulated Cori Phase II system: how synchronous
//! and hybrid configurations scale for the HEP workload, plus the
//! full-system throughput estimate.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use scidl_core::experiments::{full_system, strong_scaling, weak_scaling};
use scidl_core::workloads::hep_workload;

fn main() {
    let w = hep_workload();
    println!(
        "workload: {} ({:.1} GF/image, {:.1} MiB model)\n",
        w.name,
        w.flops_per_image() / 1e9,
        w.model_bytes as f64 / (1024.0 * 1024.0)
    );

    println!("strong scaling (fixed batch 2048 per synchronous group):");
    println!("{:>8} {:>8} {:>10}", "nodes", "groups", "speedup");
    for r in strong_scaling(&w, &[64, 256, 1024], &[1, 4], 2048, 10, 3) {
        println!("{:>8} {:>8} {:>10.0}", r.nodes, r.groups, r.speedup);
    }

    println!("\nweak scaling (batch 8 per node):");
    println!("{:>8} {:>8} {:>10}", "nodes", "groups", "speedup");
    for r in weak_scaling(&w, &[64, 512, 2048], &[1, 4], 8, 10, 3) {
        println!("{:>8} {:>8} {:>10.0}", r.nodes, r.groups, r.speedup);
    }

    println!("\nfull-system estimate (9594 nodes, 9 groups, minibatch 1066/group):");
    let fs = full_system(&w, 9594, 9, 1066, 20, 0, 3);
    println!(
        "  peak {:.2} PF, sustained {:.2} PF, {:.0}x over one node, {:.0} ms/iteration",
        fs.peak_pflops,
        fs.sustained_pflops,
        fs.speedup_vs_single,
        fs.mean_iter_secs * 1e3
    );
}
