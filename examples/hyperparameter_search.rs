//! Automated hyper-parameter search (Sec. VIII-B: "it is unreasonable to
//! expect scientists to be conversant in the art of hyper-parameter
//! tuning … higher-level libraries such as Spearmint can be used"):
//! random search over (learning rate, momentum, group count) driving the
//! simulated hybrid engine, with the asynchrony-aware momentum prior of
//! Mitliagkas et al. [31] biasing the proposals.
//!
//! ```text
//! cargo run --release --example hyperparameter_search
//! ```

use scidl_core::tuner::{random_search, SearchSpace, TunerConfig};
use scidl_core::workloads::hep_workload;
use scidl_data::{HepConfig, HepDataset};

fn main() {
    let ds = HepDataset::generate(HepConfig::small(), 768, 99);
    let space = SearchSpace::default();
    let cfg = TunerConfig {
        trials: 10,
        updates: 48,
        total_batch: 64,
        nodes: 64,
        smooth_window: 6,
    };

    println!(
        "random search: {} trials x {} updates over lr in [{:.0e}, {:.0e}], momentum prior on\n",
        cfg.trials, cfg.updates, space.lr.0, space.lr.1
    );
    let trials = random_search(&space, &cfg, &hep_workload(), &ds, 7);

    println!("{:>4} {:>10} {:>9} {:>7} {:>10}", "rank", "lr", "momentum", "groups", "best loss");
    for (i, t) in trials.iter().enumerate() {
        println!(
            "{:>4} {:>10.2e} {:>9.2} {:>7} {:>10.4}",
            i + 1,
            t.lr,
            t.momentum,
            t.groups,
            t.score
        );
    }
    let best = &trials[0];
    println!(
        "\nbest configuration: lr {:.2e}, momentum {:.2}, {} group(s) -> loss {:.4}",
        best.lr, best.momentum, best.groups, best.score
    );
}
