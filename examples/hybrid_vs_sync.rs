//! The paper's core comparison on real threads: synchronous training vs
//! hybrid groups exchanging updates through per-layer parameter servers.
//! Demonstrates (a) the sync run behaves as sequential SGD, (b) hybrid
//! runs carry measurable gradient staleness, and (c) both converge.
//!
//! ```text
//! cargo run --release --example hybrid_vs_sync [-- --trace out.json]
//! ```
//!
//! With `--trace`, every run's iteration/all-reduce/PS spans land in
//! Chrome `trace_event` JSON (load at chrome://tracing) plus a
//! per-iteration CSV next to it.

use scidl_core::thread_engine::{ThreadEngine, ThreadEngineConfig};
use scidl_core::trace;
use scidl_data::{HepConfig, HepDataset};
use std::sync::Arc;

fn main() {
    let trace_path: Option<std::path::PathBuf> = {
        let mut args = std::env::args();
        let mut found = None;
        while let Some(a) = args.next() {
            if a == "--trace" {
                found = Some(args.next().expect("--trace requires a path").into());
            }
        }
        found
    };
    if trace_path.is_some() {
        trace::install(Arc::new(trace::TraceSink::new()));
    }

    let ds = Arc::new(HepDataset::generate(HepConfig::small(), 768, 99));

    for (label, groups, nodes_per_group, momentum) in [
        ("synchronous (1 group x 4 nodes)", 1usize, 4usize, 0.9f32),
        ("hybrid (2 groups x 2 nodes)", 2, 2, 0.8),
        ("hybrid (4 groups x 1 node)", 4, 1, 0.6),
    ] {
        let mut cfg = ThreadEngineConfig::new(groups, nodes_per_group, 16);
        cfg.iterations = 30;
        cfg.lr = 2e-3;
        cfg.momentum = momentum;
        cfg.seed = 4242;

        let t0 = std::time::Instant::now();
        let run = ThreadEngine::run(&cfg, Arc::clone(&ds));
        let wall = t0.elapsed().as_secs_f64();

        let pts = &run.curve.points;
        let first: f32 = pts.iter().take(5).map(|p| p.1).sum::<f32>() / 5.0;
        let last: f32 = pts.iter().rev().take(5).map(|p| p.1).sum::<f32>() / 5.0;
        println!("{label}");
        println!(
            "  updates {:>3}   staleness {:.2}   loss {first:.4} -> {last:.4}   wall {wall:.2}s",
            run.updates, run.mean_staleness
        );
        assert!(
            run.final_params.iter().all(|p| p.is_finite()),
            "model must stay finite"
        );
    }
    println!("\nnote: staleness is 0 for the synchronous run by construction and ~G-1");
    println!("for G free-running groups — the quantity the momentum correction of [31] targets.");

    if let Some(path) = trace_path {
        let sink = trace::uninstall().expect("sink was installed above");
        sink.write_chrome_json(&path).expect("write trace json");
        let csv_path = path.with_extension("csv");
        sink.write_iteration_csv(&csv_path).expect("write trace csv");
        println!(
            "\ntrace: {} events -> {}, {} rows -> {}",
            sink.events().len(),
            path.display(),
            sink.rows().len(),
            csv_path.display()
        );
    }
}
