//! Fleet-scale serving: a replicated router, a canary rollout, and an
//! SLO autoscaler — the serving tier one level up from
//! `inference_serving`.
//!
//! Three replicas serve a HEP classifier behind a `Router` with
//! power-of-two-choices dispatch while a `FaultPlan` (global worker
//! indices) kills replica 0's only worker mid-batch: the router retires
//! the dead replica and reroutes its in-flight work to a sibling, so
//! every request still resolves. A candidate model then rides a canary
//! replica for a seeded fraction of traffic and is promoted fleet-wide
//! once its p99 holds up; finally the autoscaler grows the fleet under
//! a burst and shrinks it back when the traffic stops.
//!
//! ```text
//! cargo run --release --example fleet_serving
//! ```

use scidl_cluster::faults::FaultPlan;
use scidl_serve::fleet::{
    AutoscalerConfig, CanaryConfig, CanaryDecision, DispatchPolicy, FleetConfig, Router,
};
use scidl_serve::{BatchPolicy, ModelRegistry, ServingModel, SupervisorConfig};
use scidl_tensor::{Shape4, TensorRng};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut rng = TensorRng::new(42);
    let registry = Arc::new(ModelRegistry::new(ServingModel::new(
        scidl_nn::arch::hep_small(&mut rng),
        1000,
        42,
    )));

    // --- a three-replica fleet with a replica-loss chaos plan ----------
    let template = scidl_serve::ServerConfig {
        workers: 1,
        queue_capacity: 64,
        policy: BatchPolicy::dynamic(8, Duration::from_millis(3)),
        // One worker per replica and no respawns: the injected crash below
        // is a whole-replica loss, not a blip the supervisor absorbs.
        supervisor: SupervisorConfig { max_respawns: 0, ..Default::default() },
        ..Default::default()
    };
    let mut cfg = FleetConfig::new(3, template, DispatchPolicy::PowerOfTwoChoices);
    cfg.seed = 4242;
    cfg.reroute_budget = 2;
    cfg.autoscaler = AutoscalerConfig {
        min_replicas: 1,
        max_replicas: 4,
        replica_rate: 1.0, // tiny: any burst demands the ceiling
        ..Default::default()
    };
    // Global worker indices: worker 0 IS replica 0 (one worker each).
    cfg.faults = FaultPlan::none().with_worker_crash(0, 1, 1e6);
    let router = Router::start(Arc::clone(&registry), cfg);

    let mut xr = TensorRng::new(3);
    let mut probe = move || xr.uniform_tensor(Shape4::new(1, 3, 32, 32), -1.0, 1.0);
    let mut served = 0usize;
    for _ in 0..48 {
        // The crash fires mid-run; rerouting keeps every request alive.
        if router
            .infer_with_priority(
                probe(),
                scidl_serve::Priority::Interactive,
                Some(Duration::from_millis(500)),
            )
            .is_ok()
        {
            served += 1;
        }
    }
    println!(
        "served {served}/48 requests across {} surviving replicas (replica 0 was killed mid-run)",
        router.live_replicas()
    );

    // --- canary rollout: candidate rides 40% of traffic ----------------
    let mut rng2 = TensorRng::new(43);
    let candidate = ServingModel::new(scidl_nn::arch::hep_small(&mut rng2), 2000, 43);
    let ccfg = CanaryConfig { fraction: 0.4, regression_tol: 1.0, min_samples: 8 };
    router
        .begin_canary(candidate, ccfg, FaultPlan::none())
        .expect("breaker closed: canary may start");
    let mut decision = CanaryDecision::Pending;
    for _ in 0..300 {
        router.infer(probe()).expect("fleet keeps serving during the rollout");
        decision = router.resolve_canary();
        if decision != CanaryDecision::Pending {
            break;
        }
    }
    assert_eq!(decision, CanaryDecision::Promoted, "a healthy candidate promotes");
    assert_eq!(registry.current().iteration, 2000);
    println!("canary promoted: fleet now serves iteration 2000 (zero downtime)");

    // --- autoscaler: burst grows the fleet, quiet shrinks it -----------
    for _ in 0..2 {
        for _ in 0..20 {
            router.infer(probe()).expect("burst traffic");
        }
        println!("burst tick: fleet sized to {} replicas", router.autoscale_tick());
    }
    for _ in 0..4 {
        router.autoscale_tick();
    }
    println!("quiet ticks: fleet converged to {} replica(s)", router.live_replicas());

    let (recorder, report) = router.shutdown_with_report();
    println!(
        "fleet report: {} routed, {} rerouted, {} replica(s) lost, {} scale-ups, {} scale-downs",
        report.routed, report.rerouted, report.replicas_lost, report.scale_ups, report.scale_downs
    );
    let p99 = recorder.total_summary().expect("requests served").p99;
    println!("fleet p99: {:.2} ms over {} served requests", p99 * 1e3, recorder.len());
    assert!(report.canary_promoted);
    assert!(report.servers.panics >= 1, "the injected replica loss fired");
}
