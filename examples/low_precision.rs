//! Low-precision training and compressed communication (Sec. VIII):
//! bfloat16 rounding, stochastic rounding, and the 8-bit error-feedback
//! all-reduce, demonstrated on real gradient traffic.
//!
//! ```text
//! cargo run --release --example low_precision
//! ```

use scidl_comm::{CommWorld, CompressedAllReduce};
use scidl_core::experiments::compression_ablation;
use scidl_nn::quant::{bf16_round, stochastic_round, QuantizedBuffer};
use scidl_tensor::TensorRng;
use std::thread;

fn main() {
    // 1. Numeric formats.
    println!("bfloat16 rounding (Sec. VIII-A's low-precision formats):");
    for x in [std::f32::consts::PI, 0.001234, 123456.7] {
        println!("  {x:>12.6} -> {:>12.6}", bf16_round(x));
    }

    // 2. Stochastic rounding is unbiased — the property refs [46]/[47]
    //    identify as critical for convergence.
    let mut rng = TensorRng::new(1);
    let x = 0.3f32;
    let n = 100_000;
    let mean: f64 = (0..n).map(|_| stochastic_round(x, 1.0, &mut rng) as f64).sum::<f64>() / n as f64;
    println!("\nstochastic rounding of {x} to integers: mean over {n} draws = {mean:.4} (unbiased)");

    // 3. 8-bit gradient compression: wire size.
    let grads: Vec<f32> = (0..594_178).map(|i| ((i % 997) as f32 - 500.0) * 1e-4).collect();
    let q = QuantizedBuffer::quantize(&grads);
    println!(
        "\nHEP-sized gradient: {} B as f32, {} B quantised ({}x smaller)",
        grads.len() * 4,
        q.wire_bytes(),
        grads.len() * 4 / q.wire_bytes()
    );

    // 4. Compressed all-reduce across real threads.
    let comms = CommWorld::new(4);
    let handles: Vec<_> = comms
        .into_iter()
        .enumerate()
        .map(|(rank, comm)| {
            thread::spawn(move || {
                let mut state = CompressedAllReduce::new();
                let mut data = vec![rank as f32; 8];
                state.allreduce_mean(&comm, &mut data);
                data[0]
            })
        })
        .collect();
    let means: Vec<f32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    println!("\ncompressed all-reduce of ranks 0..4: every rank sees mean ≈ {:.3}", means[0]);

    // 5. End-to-end: does compression hurt convergence? (Sec. VIII-B's
    //    open question, answered by the error-feedback mechanism.)
    println!("\ntraining comparison (2 ranks, 40 iterations):");
    let r = compression_ablation(2, 40, 8, 256, 3);
    println!("  f32 all-reduce        : final loss {:.4}, {} B/iter", r.loss_f32, r.bytes_f32);
    println!("  8-bit + error feedback: final loss {:.4}, {} B/iter", r.loss_q8, r.bytes_q8);
}
