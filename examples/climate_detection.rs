//! Semi-supervised extreme-weather detection (the paper's Sec. I-B
//! workload): train the shared-encoder detector + autoencoder on
//! synthetic climate frames, then localise events on held-out frames.
//!
//! ```text
//! cargo run --release --example climate_detection
//! ```

use scidl_core::experiments::science::{climate_science, ClimateScienceScale};

fn main() {
    let scale = ClimateScienceScale {
        train_frames: 96,
        test_frames: 16,
        epochs: 30,
        batch: 8,
        labelled_fraction: 0.6, // 40% of frames train the autoencoder only
        confidence: 0.8,        // the paper keeps boxes with conf > 0.8
    };
    println!(
        "training semi-supervised detector on {} frames ({:.0}% labelled), {} epochs…",
        scale.train_frames,
        scale.labelled_fraction * 100.0,
        scale.epochs
    );

    let r = climate_science(&scale, 21);

    println!("\nheld-out frames:");
    println!("  detections:   {}", r.detections);
    println!("  ground truth: {}", r.ground_truth);
    println!("  precision:    {:.1}%", r.precision * 100.0);
    println!("  recall:       {:.1}%", r.recall * 100.0);
    println!("  recon loss:   {:.4} (unsupervised path)", r.final_recon_loss);

    println!("\nTMQ channel of a test frame ('#' ground truth, '+' predicted):\n");
    println!("{}", r.rendering);
}
