//! Supervised HEP classification (the paper's Sec. I-A workload): train
//! the CNN on synthetic LHC events and compare it against the cut-based
//! benchmark analysis at a fixed false-positive-rate budget.
//!
//! ```text
//! cargo run --release --example hep_classification
//! ```

use scidl_core::experiments::science::{hep_science, HepScienceScale};

fn main() {
    let scale = HepScienceScale {
        train_events: 2000,
        test_events: 2000,
        iterations: 200,
        batch: 32,
        fpr_budget: 0.02,
    };
    println!(
        "training CNN on {} events; evaluating at FPR <= {:.1}% on {} events…",
        scale.train_events,
        scale.fpr_budget * 100.0,
        scale.test_events
    );

    let r = hep_science(&scale, 11);

    println!("\ncut-based benchmark (tuned like ref. [5]):");
    println!(
        "  selection: HT > {:.0} GeV, njets >= {}, leading-jet pT > {:.0} GeV",
        r.cuts.ht_min, r.cuts.njets_min, r.cuts.leading_min
    );
    println!(
        "  -> TPR {:.1}% at FPR {:.2}%",
        r.baseline_tpr * 100.0,
        r.baseline_fpr * 100.0
    );
    println!("\nCNN on low-level calorimeter images:");
    println!(
        "  -> TPR {:.1}% at FPR {:.2}%",
        r.cnn_tpr * 100.0,
        r.fpr_budget * 100.0
    );
    println!("\nimprovement: {:.2}x  (paper: 1.7x at FPR 0.02% on 10M events)", r.improvement);
}
